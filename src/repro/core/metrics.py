"""Search instrumentation: what the three phases did and how long they took.

The paper's pitch (Tables 1-2) is that JECB's code-based search is cheap
enough to rerun constantly; :class:`SearchMetrics` makes that claim
observable on every run. Phase 2 emits one :class:`ClassMetrics` per
transaction class (wall time, trees examined/pruned, mapping-independence
tests, evaluator cache behaviour); the partitioner folds them into one
:class:`SearchMetrics` together with per-phase wall times and Phase 3's
combination counts.

Everything here is a plain picklable dataclass so per-class metrics
survive the trip back from :mod:`concurrent.futures` process workers, and
``merge``/``to_dict`` keep aggregation and reporting trivial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one bounded cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits ({self.hit_rate:.1%}), "
            f"{self.evictions} evicted"
        )


@dataclass
class ClassMetrics:
    """What Phase 2 did for one transaction class."""

    class_name: str
    wall_seconds: float = 0.0
    trees_examined: int = 0
    trees_pruned: int = 0
    mi_tests: int = 0
    mi_refuted: int = 0
    path_evaluations: int = 0
    #: wall time spent inside mapping-independence tests (both engines)
    mi_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)

    def to_dict(self) -> dict[str, Any]:
        return {
            "class_name": self.class_name,
            "wall_seconds": self.wall_seconds,
            "trees_examined": self.trees_examined,
            "trees_pruned": self.trees_pruned,
            "mi_tests": self.mi_tests,
            "mi_refuted": self.mi_refuted,
            "path_evaluations": self.path_evaluations,
            "mi_seconds": self.mi_seconds,
            "cache": self.cache.to_dict(),
        }


@dataclass
class SearchMetrics:
    """One run of the three-phase search, aggregated for reporting.

    Attached to :class:`~repro.core.partitioner.JECBResult` as
    ``result.metrics``; ``summary()`` renders the human-readable block the
    experiments CLI prints.
    """

    workers: int = 1
    parallel: bool = False
    #: which path-evaluation engine ran ("columnar" or "object")
    engine: str = "object"
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    phase3_seconds: float = 0.0
    total_seconds: float = 0.0
    #: stage timers — building the columnar trace (interning included in
    #: ``intern_seconds``), mapping-independence testing summed over
    #: classes, and Phase 3's Definition-5/6 cost evaluation
    trace_build_seconds: float = 0.0
    intern_seconds: float = 0.0
    mi_seconds: float = 0.0
    cost_eval_seconds: float = 0.0
    classes_searched: int = 0
    trees_examined: int = 0
    trees_pruned: int = 0
    mi_tests: int = 0
    mi_refuted: int = 0
    path_evaluations: int = 0
    candidate_attributes: int = 0
    combinations_evaluated: int = 0
    evaluator_cache: CacheStats = field(default_factory=CacheStats)
    per_class: list[ClassMetrics] = field(default_factory=list)

    def add_class(self, metrics: ClassMetrics) -> None:
        """Fold one class's Phase-2 metrics into the run totals."""
        self.per_class.append(metrics)
        self.classes_searched += 1
        self.trees_examined += metrics.trees_examined
        self.trees_pruned += metrics.trees_pruned
        self.mi_tests += metrics.mi_tests
        self.mi_refuted += metrics.mi_refuted
        self.path_evaluations += metrics.path_evaluations
        self.mi_seconds += metrics.mi_seconds
        self.evaluator_cache.merge(metrics.cache)

    def class_metrics(self, name: str) -> ClassMetrics:
        for metrics in self.per_class:
            if metrics.class_name == name:
                return metrics
        raise KeyError(name)

    @property
    def cache_hit_rate(self) -> float:
        return self.evaluator_cache.hit_rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "engine": self.engine,
            "phase1_seconds": self.phase1_seconds,
            "phase2_seconds": self.phase2_seconds,
            "phase3_seconds": self.phase3_seconds,
            "total_seconds": self.total_seconds,
            "trace_build_seconds": self.trace_build_seconds,
            "intern_seconds": self.intern_seconds,
            "mi_seconds": self.mi_seconds,
            "cost_eval_seconds": self.cost_eval_seconds,
            "classes_searched": self.classes_searched,
            "trees_examined": self.trees_examined,
            "trees_pruned": self.trees_pruned,
            "mi_tests": self.mi_tests,
            "mi_refuted": self.mi_refuted,
            "path_evaluations": self.path_evaluations,
            "candidate_attributes": self.candidate_attributes,
            "combinations_evaluated": self.combinations_evaluated,
            "evaluator_cache": self.evaluator_cache.to_dict(),
            "per_class": [m.to_dict() for m in self.per_class],
        }

    def summary(self) -> str:
        mode = f"{self.workers} workers" if self.parallel else "serial"
        lines = [
            f"search: {self.total_seconds:.2f}s total "
            f"(phase1 {self.phase1_seconds:.2f}s, "
            f"phase2 {self.phase2_seconds:.2f}s [{mode}], "
            f"phase3 {self.phase3_seconds:.2f}s) [{self.engine} engine]",
            f"stages: trace-build {self.trace_build_seconds:.3f}s "
            f"(interning {self.intern_seconds:.3f}s), "
            f"MI testing {self.mi_seconds:.3f}s, "
            f"cost eval {self.cost_eval_seconds:.3f}s",
            f"phase2: {self.classes_searched} classes, "
            f"{self.trees_examined} trees examined, "
            f"{self.trees_pruned} pruned, "
            f"{self.mi_tests} MI tests ({self.mi_refuted} refuted)",
            f"phase3: {self.candidate_attributes} candidate attributes, "
            f"{self.combinations_evaluated} combinations evaluated",
            f"evaluator cache: {self.evaluator_cache}",
        ]
        slowest = sorted(
            self.per_class, key=lambda m: m.wall_seconds, reverse=True
        )[:3]
        for metrics in slowest:
            lines.append(
                f"  {metrics.class_name}: {metrics.wall_seconds:.2f}s, "
                f"{metrics.trees_examined} trees, "
                f"cache {metrics.cache.hit_rate:.1%}"
            )
        return "\n".join(lines)


#: Upper bucket bounds of :class:`LatencyHistogram`, in microseconds. The
#: last bucket is open-ended.
LATENCY_BUCKETS_US: tuple[float, ...] = (1.0, 10.0, 100.0, 1_000.0, 10_000.0)


@dataclass
class LatencyHistogram:
    """Log-scale latency histogram (microsecond buckets) with totals.

    Small and mergeable on purpose: the router records one histogram per
    routing outcome, and batch summaries fold worker histograms together.
    """

    counts: list[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS_US) + 1)
    )
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean_seconds(self) -> float:
        count = self.count
        return self.total_seconds / count if count else 0.0

    def observe(self, seconds: float) -> None:
        micros = seconds * 1e6
        slot = len(LATENCY_BUCKETS_US)
        for i, bound in enumerate(LATENCY_BUCKETS_US):
            if micros < bound:
                slot = i
                break
        self.counts[slot] += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total_seconds += other.total_seconds
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "bucket_bounds_us": list(LATENCY_BUCKETS_US),
            "counts": list(self.counts),
        }

    def __str__(self) -> str:
        count = self.count
        if not count:
            return "0 calls"
        return (
            f"{count} calls, mean {self.mean_seconds * 1e6:.1f}us, "
            f"max {self.max_seconds * 1e6:.1f}us"
        )


@dataclass
class RoutingMetrics:
    """What the online routing tier did: lookup-table lifecycle, write-
    through maintenance, and per-outcome routing latencies.

    Attached to :class:`~repro.routing.router.RouteSummary` and printed by
    the experiments CLI alongside :class:`SearchMetrics`, so a run shows
    both how the partitioning was found *and* how it routes.
    """

    lookups_built: int = 0
    lookups_rebuilt: int = 0
    lookups_evicted: int = 0
    staleness_detections: int = 0
    write_through_inserts: int = 0
    write_through_deletes: int = 0
    write_through_updates: int = 0
    write_through_fallbacks: int = 0
    batch_calls: int = 0
    batch_memo_hits: int = 0
    broadcast_causes: dict[str, int] = field(default_factory=dict)
    latency: dict[str, LatencyHistogram] = field(default_factory=dict)

    @property
    def write_through_applied(self) -> int:
        return (
            self.write_through_inserts
            + self.write_through_deletes
            + self.write_through_updates
        )

    def record_broadcast_cause(self, cause: str) -> None:
        self.broadcast_causes[cause] = self.broadcast_causes.get(cause, 0) + 1

    def observe(self, outcome: str, seconds: float) -> None:
        """Record one routed call's latency under its outcome label."""
        histogram = self.latency.get(outcome)
        if histogram is None:
            histogram = LatencyHistogram()
            self.latency[outcome] = histogram
        histogram.observe(seconds)

    def merge(self, other: "RoutingMetrics") -> None:
        self.lookups_built += other.lookups_built
        self.lookups_rebuilt += other.lookups_rebuilt
        self.lookups_evicted += other.lookups_evicted
        self.staleness_detections += other.staleness_detections
        self.write_through_inserts += other.write_through_inserts
        self.write_through_deletes += other.write_through_deletes
        self.write_through_updates += other.write_through_updates
        self.write_through_fallbacks += other.write_through_fallbacks
        self.batch_calls += other.batch_calls
        self.batch_memo_hits += other.batch_memo_hits
        for cause, count in other.broadcast_causes.items():
            self.broadcast_causes[cause] = (
                self.broadcast_causes.get(cause, 0) + count
            )
        for outcome, histogram in other.latency.items():
            mine = self.latency.get(outcome)
            if mine is None:
                self.latency[outcome] = LatencyHistogram(
                    list(histogram.counts),
                    histogram.total_seconds,
                    histogram.max_seconds,
                )
            else:
                mine.merge(histogram)

    def to_dict(self) -> dict[str, Any]:
        return {
            "lookups_built": self.lookups_built,
            "lookups_rebuilt": self.lookups_rebuilt,
            "lookups_evicted": self.lookups_evicted,
            "staleness_detections": self.staleness_detections,
            "write_through_inserts": self.write_through_inserts,
            "write_through_deletes": self.write_through_deletes,
            "write_through_updates": self.write_through_updates,
            "write_through_fallbacks": self.write_through_fallbacks,
            "batch_calls": self.batch_calls,
            "batch_memo_hits": self.batch_memo_hits,
            "broadcast_causes": dict(self.broadcast_causes),
            "latency": {k: v.to_dict() for k, v in self.latency.items()},
        }

    def summary(self) -> str:
        lines = [
            f"lookups: {self.lookups_built} built, "
            f"{self.lookups_rebuilt} rebuilt, "
            f"{self.lookups_evicted} evicted, "
            f"{self.staleness_detections} staleness detections",
            f"write-through: {self.write_through_inserts} inserts, "
            f"{self.write_through_deletes} deletes, "
            f"{self.write_through_updates} updates, "
            f"{self.write_through_fallbacks} rebuild fallbacks",
        ]
        if self.batch_calls:
            lines.append(
                f"batch: {self.batch_calls} calls, "
                f"{self.batch_memo_hits} memo hits"
            )
        if self.broadcast_causes:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.broadcast_causes.items())
            )
            lines.append(f"broadcast causes: {causes}")
        for outcome in sorted(self.latency):
            lines.append(f"  {outcome}: {self.latency[outcome]}")
        return "\n".join(lines)


@dataclass
class ClusterMetrics:
    """What the simulated cluster did: per-outcome transaction counts,
    2PC message/cost accounting, fault-injection effects, and physical
    data movement.

    The cost unit is simulated work, not wall time: a single-partition
    transaction costs ``CostConfig.local_unit``; a distributed one
    additionally pays the coordinator overhead plus prepare/commit rounds
    per participant. ``distributed_fraction`` is the execution-side twin
    of the static evaluator's Definition-6 cost — with faults disabled and
    one node per partition the two agree exactly (see tests).
    """

    nodes: int = 0
    transactions: int = 0
    committed_local: int = 0
    committed_distributed: int = 0
    broadcasts: int = 0
    aborts: int = 0
    retries: int = 0
    failed: int = 0
    replica_failovers: int = 0
    prepare_messages: int = 0
    commit_messages: int = 0
    local_cost_units: float = 0.0
    coordination_cost_units: float = 0.0
    retry_cost_units: float = 0.0
    tuples_placed: int = 0
    tuples_replicated: int = 0
    unroutable_tuples: int = 0
    tuples_migrated: int = 0
    rows_resynced: int = 0
    repartitions: int = 0
    crashes: int = 0
    recoveries: int = 0
    per_node_transactions: dict[int, int] = field(default_factory=dict)
    per_class_distributed: dict[str, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return self.committed_local + self.committed_distributed

    @property
    def distributed_fraction(self) -> float:
        """Fraction of finished transactions that needed >1 participant.

        Transactions that failed permanently (dead node, retries
        exhausted) count toward the denominator: they were distributed
        work the cluster could not complete.
        """
        finished = self.committed + self.failed
        if finished == 0:
            return 0.0
        return (self.committed_distributed + self.failed) / finished

    @property
    def total_cost_units(self) -> float:
        return (
            self.local_cost_units
            + self.coordination_cost_units
            + self.retry_cost_units
        )

    @property
    def cost_per_transaction(self) -> float:
        finished = self.committed + self.failed
        if finished == 0:
            return 0.0
        return self.total_cost_units / finished

    @property
    def coordination_per_transaction(self) -> float:
        """Mean simulated coordination overhead per finished transaction."""
        finished = self.committed + self.failed
        if finished == 0:
            return 0.0
        return self.coordination_cost_units / finished

    def record_participation(self, node_ids) -> None:
        for node_id in node_ids:
            self.per_node_transactions[node_id] = (
                self.per_node_transactions.get(node_id, 0) + 1
            )

    def merge(self, other: "ClusterMetrics") -> None:
        self.nodes = max(self.nodes, other.nodes)
        self.transactions += other.transactions
        self.committed_local += other.committed_local
        self.committed_distributed += other.committed_distributed
        self.broadcasts += other.broadcasts
        self.aborts += other.aborts
        self.retries += other.retries
        self.failed += other.failed
        self.replica_failovers += other.replica_failovers
        self.prepare_messages += other.prepare_messages
        self.commit_messages += other.commit_messages
        self.local_cost_units += other.local_cost_units
        self.coordination_cost_units += other.coordination_cost_units
        self.retry_cost_units += other.retry_cost_units
        self.tuples_placed += other.tuples_placed
        self.tuples_replicated += other.tuples_replicated
        self.unroutable_tuples += other.unroutable_tuples
        self.tuples_migrated += other.tuples_migrated
        self.rows_resynced += other.rows_resynced
        self.repartitions += other.repartitions
        self.crashes += other.crashes
        self.recoveries += other.recoveries
        for node_id, count in other.per_node_transactions.items():
            self.per_node_transactions[node_id] = (
                self.per_node_transactions.get(node_id, 0) + count
            )
        for name, count in other.per_class_distributed.items():
            self.per_class_distributed[name] = (
                self.per_class_distributed.get(name, 0) + count
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "nodes": self.nodes,
            "transactions": self.transactions,
            "committed_local": self.committed_local,
            "committed_distributed": self.committed_distributed,
            "distributed_fraction": self.distributed_fraction,
            "broadcasts": self.broadcasts,
            "aborts": self.aborts,
            "retries": self.retries,
            "failed": self.failed,
            "replica_failovers": self.replica_failovers,
            "prepare_messages": self.prepare_messages,
            "commit_messages": self.commit_messages,
            "local_cost_units": self.local_cost_units,
            "coordination_cost_units": self.coordination_cost_units,
            "retry_cost_units": self.retry_cost_units,
            "total_cost_units": self.total_cost_units,
            "cost_per_transaction": self.cost_per_transaction,
            "coordination_per_transaction": self.coordination_per_transaction,
            "tuples_placed": self.tuples_placed,
            "tuples_replicated": self.tuples_replicated,
            "unroutable_tuples": self.unroutable_tuples,
            "tuples_migrated": self.tuples_migrated,
            "rows_resynced": self.rows_resynced,
            "repartitions": self.repartitions,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "per_node_transactions": dict(self.per_node_transactions),
            "per_class_distributed": dict(self.per_class_distributed),
        }

    def summary(self) -> str:
        lines = [
            f"cluster: {self.nodes} nodes, {self.transactions} transactions "
            f"({self.committed_local} local, "
            f"{self.committed_distributed} distributed, "
            f"{self.failed} failed) -> "
            f"{self.distributed_fraction:.1%} distributed",
            f"cost: {self.total_cost_units:.1f} units "
            f"({self.coordination_cost_units:.1f} coordination, "
            f"{self.retry_cost_units:.1f} retry), "
            f"{self.cost_per_transaction:.2f}/txn",
            f"2pc: {self.prepare_messages} prepares, "
            f"{self.commit_messages} commits, "
            f"{self.broadcasts} broadcasts",
            f"data: {self.tuples_placed} placed, "
            f"{self.tuples_replicated} replicated, "
            f"{self.unroutable_tuples} unroutable, "
            f"{self.tuples_migrated} migrated",
        ]
        if self.crashes or self.recoveries or self.aborts:
            lines.append(
                f"faults: {self.crashes} crashes, "
                f"{self.recoveries} recoveries, "
                f"{self.aborts} aborts ({self.retries} retried), "
                f"{self.replica_failovers} replica failovers, "
                f"{self.rows_resynced} rows resynced"
            )
        if self.per_node_transactions:
            loads = ", ".join(
                f"n{node_id}={count}"
                for node_id, count in sorted(self.per_node_transactions.items())
            )
            lines.append(f"  participation: {loads}")
        return "\n".join(lines)


class Stopwatch:
    """Tiny ``perf_counter`` context manager for phase timing."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
