"""Search instrumentation: what the three phases did and how long they took.

The paper's pitch (Tables 1-2) is that JECB's code-based search is cheap
enough to rerun constantly; :class:`SearchMetrics` makes that claim
observable on every run. Phase 2 emits one :class:`ClassMetrics` per
transaction class (wall time, trees examined/pruned, mapping-independence
tests, evaluator cache behaviour); the partitioner folds them into one
:class:`SearchMetrics` together with per-phase wall times and Phase 3's
combination counts.

Everything here is a plain picklable dataclass so per-class metrics
survive the trip back from :mod:`concurrent.futures` process workers, and
``merge``/``to_dict`` keep aggregation and reporting trivial.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one bounded cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions

    def to_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.lookups} hits ({self.hit_rate:.1%}), "
            f"{self.evictions} evicted"
        )


@dataclass
class ClassMetrics:
    """What Phase 2 did for one transaction class."""

    class_name: str
    wall_seconds: float = 0.0
    trees_examined: int = 0
    trees_pruned: int = 0
    mi_tests: int = 0
    mi_refuted: int = 0
    path_evaluations: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def to_dict(self) -> dict[str, Any]:
        return {
            "class_name": self.class_name,
            "wall_seconds": self.wall_seconds,
            "trees_examined": self.trees_examined,
            "trees_pruned": self.trees_pruned,
            "mi_tests": self.mi_tests,
            "mi_refuted": self.mi_refuted,
            "path_evaluations": self.path_evaluations,
            "cache": self.cache.to_dict(),
        }


@dataclass
class SearchMetrics:
    """One run of the three-phase search, aggregated for reporting.

    Attached to :class:`~repro.core.partitioner.JECBResult` as
    ``result.metrics``; ``summary()`` renders the human-readable block the
    experiments CLI prints.
    """

    workers: int = 1
    parallel: bool = False
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    phase3_seconds: float = 0.0
    total_seconds: float = 0.0
    classes_searched: int = 0
    trees_examined: int = 0
    trees_pruned: int = 0
    mi_tests: int = 0
    mi_refuted: int = 0
    path_evaluations: int = 0
    candidate_attributes: int = 0
    combinations_evaluated: int = 0
    evaluator_cache: CacheStats = field(default_factory=CacheStats)
    per_class: list[ClassMetrics] = field(default_factory=list)

    def add_class(self, metrics: ClassMetrics) -> None:
        """Fold one class's Phase-2 metrics into the run totals."""
        self.per_class.append(metrics)
        self.classes_searched += 1
        self.trees_examined += metrics.trees_examined
        self.trees_pruned += metrics.trees_pruned
        self.mi_tests += metrics.mi_tests
        self.mi_refuted += metrics.mi_refuted
        self.path_evaluations += metrics.path_evaluations
        self.evaluator_cache.merge(metrics.cache)

    def class_metrics(self, name: str) -> ClassMetrics:
        for metrics in self.per_class:
            if metrics.class_name == name:
                return metrics
        raise KeyError(name)

    @property
    def cache_hit_rate(self) -> float:
        return self.evaluator_cache.hit_rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "parallel": self.parallel,
            "phase1_seconds": self.phase1_seconds,
            "phase2_seconds": self.phase2_seconds,
            "phase3_seconds": self.phase3_seconds,
            "total_seconds": self.total_seconds,
            "classes_searched": self.classes_searched,
            "trees_examined": self.trees_examined,
            "trees_pruned": self.trees_pruned,
            "mi_tests": self.mi_tests,
            "mi_refuted": self.mi_refuted,
            "path_evaluations": self.path_evaluations,
            "candidate_attributes": self.candidate_attributes,
            "combinations_evaluated": self.combinations_evaluated,
            "evaluator_cache": self.evaluator_cache.to_dict(),
            "per_class": [m.to_dict() for m in self.per_class],
        }

    def summary(self) -> str:
        mode = f"{self.workers} workers" if self.parallel else "serial"
        lines = [
            f"search: {self.total_seconds:.2f}s total "
            f"(phase1 {self.phase1_seconds:.2f}s, "
            f"phase2 {self.phase2_seconds:.2f}s [{mode}], "
            f"phase3 {self.phase3_seconds:.2f}s)",
            f"phase2: {self.classes_searched} classes, "
            f"{self.trees_examined} trees examined, "
            f"{self.trees_pruned} pruned, "
            f"{self.mi_tests} MI tests ({self.mi_refuted} refuted)",
            f"phase3: {self.candidate_attributes} candidate attributes, "
            f"{self.combinations_evaluated} combinations evaluated",
            f"evaluator cache: {self.evaluator_cache}",
        ]
        slowest = sorted(
            self.per_class, key=lambda m: m.wall_seconds, reverse=True
        )[:3]
        for metrics in slowest:
            lines.append(
                f"  {metrics.class_name}: {metrics.wall_seconds:.2f}s, "
                f"{metrics.trees_examined} trees, "
                f"cache {metrics.cache.hit_rate:.1%}"
            )
        return "\n".join(lines)


class Stopwatch:
    """Tiny ``perf_counter`` context manager for phase timing."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
