"""Join trees (Definition 3) and their trace-driven properties.

A join tree ``Tree(W, X)`` combines one join path per partitioned table of
a homogeneous workload ``W``, all ending at the root attribute ``X``. The
tree maps every tuple the workload touches to a value of ``X``; a tree is a
**mapping-independent** solution (Definition 7) when every transaction's
tuples map to a *single* root value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import PartitioningError
from repro.schema.attribute import Attr
from repro.core.join_path import JoinPath
from repro.core.path_eval import JoinPathEvaluator
from repro.trace.columnar import ColumnarClassTrace
from repro.trace.events import Trace, TransactionTrace


#: Distinct "no value seen yet" marker (root values may legitimately be
#: any object, including None-adjacent sentinels a caller might pick).
_NO_VALUE = object()


@dataclass(frozen=True)
class JoinTree:
    """One join path per covered table, all rooted at ``root``."""

    root: Attr
    paths: Mapping[str, JoinPath]

    def __post_init__(self) -> None:
        for table, path in self.paths.items():
            if path.source_table != table:
                raise PartitioningError(
                    f"path for {table} starts at {path.source_table}"
                )
            if path.destination != self.root:
                raise PartitioningError(
                    f"path for {table} ends at {path.destination}, not {self.root}"
                )

    @property
    def tables(self) -> frozenset[str]:
        return frozenset(self.paths)

    def path(self, table: str) -> JoinPath:
        return self.paths[table]

    def __hash__(self) -> int:
        return hash((self.root, tuple(sorted(self.paths.items(), key=lambda kv: kv[0]))))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, JoinTree)
            and self.root == other.root
            and dict(self.paths) == dict(other.paths)
        )

    def __str__(self) -> str:
        lines = [f"Tree(root={self.root})"]
        for table in sorted(self.paths):
            lines.append(f"  {table}: {self.paths[table]}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # trace-driven semantics
    # ------------------------------------------------------------------
    def root_values(
        self, txn: TransactionTrace, evaluator: JoinPathEvaluator
    ) -> set[Any] | None:
        """Root values of all covered tuples of *txn*.

        Returns ``None`` when some covered tuple has no root value (the
        tree fails to map it); tuples of tables outside the tree are
        ignored (they are replicated or handled by other solutions).
        """
        values: set[Any] = set()
        for table, key in txn.tuples:
            path = self.paths.get(table)
            if path is None:
                continue
            value = evaluator.evaluate(path, key)
            if value is None:
                return None
            values.add(value)
        return values

    def is_mapping_independent(
        self, trace: Trace, evaluator: JoinPathEvaluator
    ) -> bool:
        """Definition 7: every transaction maps to exactly one root value.

        Columnar trace views whose interned columns belong to the
        evaluator's engine are checked by the vectorized kernel (identical
        verdicts, see :meth:`ColumnarEngine.tree_is_mapping_independent`);
        everything else takes the object scan below.

        Refutation short-circuits the object scan: it stops at the first
        tuple whose root value misses or disagrees, without finishing the
        transaction or the rest of the trace — one bad Payment transaction
        refutes a TPC-C tree after a handful of evaluations instead of
        thousands.
        """
        started = time.perf_counter()
        evaluator.mi_tests += 1
        engine = getattr(evaluator, "engine", None)
        if (
            engine is not None
            and isinstance(trace, ColumnarClassTrace)
            and trace.parent is engine.ctrace
        ):
            verdict, probes = engine.tree_is_mapping_independent(
                self, trace, evaluator.cache_stats
            )
            evaluator.evaluations += probes
            if not verdict:
                evaluator.mi_refuted += 1
            evaluator.mi_seconds += time.perf_counter() - started
            return verdict
        paths = self.paths
        sentinel = _NO_VALUE
        try:
            for txn in trace:
                first = sentinel
                for table, key in txn.tuples:
                    path = paths.get(table)
                    if path is None:
                        continue
                    value = evaluator.evaluate(path, key)
                    if value is None or (
                        first is not sentinel
                        and value is not first
                        and value != first
                    ):
                        evaluator.mi_refuted += 1
                        return False
                    first = value
            return True
        finally:
            evaluator.mi_seconds += time.perf_counter() - started

    def restrict(self, tables: Iterable[str]) -> "JoinTree":
        """The tree covering only *tables* (a workload-elimination view)."""
        subset = {t for t in tables if t in self.paths}
        return JoinTree(self.root, {t: self.paths[t] for t in subset})

    # ------------------------------------------------------------------
    # sub-trees (partial solutions)
    # ------------------------------------------------------------------
    def subtrees(self) -> list["JoinTree"]:
        """Sub-join-trees obtained by removing the root attribute.

        Each covered table's path is shortened by its final hop; paths that
        then end at different attributes split the tree into one sub-tree
        per new root. Tables whose path becomes empty (the root was inside
        the table itself) drop out.
        """
        truncated: dict[Attr, dict[str, JoinPath]] = {}
        for table, path in self.paths.items():
            if len(path) <= 1:
                continue
            shorter = JoinPath(path.nodes[:-1], path.steps[:-1])
            if len(shorter.nodes[-1]) != 1:
                # New terminal is a composite key set; per Definition 2 a
                # destination must be a single attribute, so walk back one
                # more hop if possible.
                if len(shorter) <= 1:
                    continue
                shorter = JoinPath(shorter.nodes[:-1], shorter.steps[:-1])
                if len(shorter.nodes[-1]) != 1:
                    continue
            (new_root,) = shorter.nodes[-1]
            truncated.setdefault(new_root, {})[table] = shorter
        out = []
        for new_root, paths in sorted(truncated.items()):
            out.append(JoinTree(new_root, paths))
        return out


def tree_relation(finer: JoinTree, coarser: JoinTree) -> bool:
    """Definition 9: is *coarser* equal to *finer* + one path p(X, Y)?

    True when both trees cover the same tables and every table's coarser
    path extends its finer path by one identical suffix starting at the
    finer root.
    """
    if finer.tables != coarser.tables:
        return False
    expected_suffix: tuple | None = None
    for table in finer.tables:
        fine_path = finer.paths[table]
        coarse_path = coarser.paths[table]
        if not fine_path.is_prefix_of(coarse_path):
            return False
        suffix = coarse_path.nodes[len(fine_path) - 1 :]
        if suffix[0] != frozenset({finer.root}):
            return False
        if expected_suffix is None:
            expected_suffix = suffix
        elif suffix != expected_suffix:
            return False
    # A genuine extension p(X, Y) has at least two nodes (X != Y);
    # otherwise the trees are identical, not finer/coarser.
    return expected_suffix is not None and len(expected_suffix) >= 2


def prune_compatible_trees(trees: Iterable[JoinTree]) -> list[JoinTree]:
    """Drop trees that are coarser versions of another tree in the set.

    Phase 2 keeps the finest representative of each compatible family: the
    finer tree yields finer partitions and composes better in Phase 3
    (Property 1 guarantees it stays mapping independent).
    """
    trees = list(trees)
    keep: list[JoinTree] = []
    for candidate in trees:
        is_coarser = any(
            other is not candidate and tree_relation(other, candidate)
            for other in trees
        )
        if not is_coarser:
            keep.append(candidate)
    return keep
