"""Statistics-based fallback mapping (Section 5.3).

When no join tree is mapping independent, JECB builds a Schism-style
mapping *at the granularity of root-attribute values*: transactions'
root-value sets form a co-access graph, min-cut partitioning assigns each
value to a partition, and the resulting lookup mapping is accepted only if
it beats both hash and range mappings on a held-out trace. This is where
JECB's scalability advantage over Schism shows: the graph has one node per
distinct root value, not per tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.join_tree import JoinTree
from repro.core.mapping import (
    HashMapping,
    LookupMapping,
    MappingFunction,
    RangeMapping,
)
from repro.core.path_eval import JoinPathEvaluator, value_luts_for
from repro.core.solution import DatabasePartitioning
from repro.evaluation.evaluator import PartitioningEvaluator
from repro.graphs.mincut import build_coaccess_graph, partition_graph
from repro.storage.database import Database
from repro.trace.events import Trace


@dataclass
class FallbackResult:
    """Outcome of the statistics fallback for one join tree."""

    mapping: LookupMapping
    lookup_cost: float
    hash_cost: float
    range_cost: float
    #: finite-sample noise guard: the lookup mapping must beat hash and
    #: range by at least this margin, otherwise a workload with *no*
    #: exploitable co-access structure (e.g. Broker-Volume's uniformly
    #: random broker sets) would occasionally be declared partitionable.
    margin: float = 0.03

    @property
    def meaningful(self) -> bool:
        """Paper's acceptance rule: beats hash *and* range (with margin)."""
        return (
            self.lookup_cost < self.hash_cost - self.margin
            and self.lookup_cost < self.range_cost - self.margin
        )


#: sentinel distinguishing "key not in the batch LUT" from a ``None`` value
_MISS = object()


def transaction_root_values(
    tree: JoinTree, trace: Trace, evaluator: JoinPathEvaluator
) -> list[set[Any]]:
    """Per-transaction sets of root values (unroutable tuples skipped).

    The iteration order over ``txn.tuples`` is preserved exactly — the
    value sets feed the co-access graph whose node order the min-cut's
    seeded shuffles consume — so the columnar fast path only swaps the
    per-access ``evaluate`` call for a batch-built dict lookup.
    """
    luts = value_luts_for(evaluator, trace, tree.paths)
    groups: list[set[Any]] = []
    for txn in trace:
        values: set[Any] = set()
        for table, key in txn.tuples:
            path = tree.paths.get(table)
            if path is None:
                continue
            if luts is None:
                value = evaluator.evaluate(path, key)
            else:
                value = luts[table].get(key, _MISS)
                if value is _MISS:
                    value = evaluator.evaluate(path, key)
            if value is not None:
                values.add(value)
        if values:
            groups.append(values)
    return groups


def build_statistics_mapping(
    tree: JoinTree,
    train_trace: Trace,
    num_partitions: int,
    evaluator: JoinPathEvaluator,
    seed: int = 7,
) -> LookupMapping:
    """Min-cut the root-value co-access graph into a lookup mapping."""
    groups = transaction_root_values(tree, train_trace, evaluator)
    graph = build_coaccess_graph(groups)
    assignment = partition_graph(graph, num_partitions, seed=seed)
    table = {value: part + 1 for value, part in assignment.items()}
    return LookupMapping(
        num_partitions, table, fallback=HashMapping(num_partitions)
    )


def evaluate_fallback(
    tree: JoinTree,
    train_trace: Trace,
    validation_trace: Trace,
    num_partitions: int,
    database: Database,
    seed: int = 7,
    path_evaluator: JoinPathEvaluator | None = None,
) -> FallbackResult:
    """Build the statistics mapping and score it against hash and range."""
    if path_evaluator is None:
        path_evaluator = JoinPathEvaluator(database)
    lookup = build_statistics_mapping(
        tree, train_trace, num_partitions, path_evaluator, seed
    )
    observed = [
        v
        for group in transaction_root_values(tree, train_trace, path_evaluator)
        for v in group
    ]
    candidates: list[tuple[str, MappingFunction]] = [
        ("lookup", lookup),
        ("hash", HashMapping(num_partitions)),
        ("range", RangeMapping.from_values(num_partitions, observed)),
    ]
    evaluator = PartitioningEvaluator(database)
    evaluator.path_evaluator = path_evaluator  # share the memo cache
    costs: dict[str, float] = {}
    for name, mapping in candidates:
        partitioning = DatabasePartitioning.from_tree(
            num_partitions, tree, mapping, name=f"fallback-{name}"
        )
        costs[name] = evaluator.cost(partitioning, validation_trace)
    return FallbackResult(
        mapping=lookup,
        lookup_cost=costs["lookup"],
        hash_cost=costs["hash"],
        range_cost=costs["range"],
    )
