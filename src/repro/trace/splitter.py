"""Trace splitting: per-class streams and train/test halves."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.trace.events import Trace


def split_by_class(trace: Trace) -> dict[str, Trace]:
    """Split a mixed trace into one homogeneous sub-trace per class.

    This is Phase 1's "splitting the trace into different streams": each
    stored procedure's transactions form one homogeneous workload.
    """
    streams: dict[str, Trace] = {}
    for txn in trace:
        streams.setdefault(txn.class_name, Trace()).append(txn)
    return streams


def train_test_split(trace: Trace, train_fraction: float = 0.5) -> tuple[Trace, Trace]:
    """Deterministically split a trace into training and testing parts.

    Transactions are interleaved round-robin (by position) rather than cut
    at a boundary so that both halves sample the same phase of the driver's
    key-generation sequence; the paper's framework likewise feeds disjoint
    training/testing traces from one collection run (Section 7.1).
    """
    if not 0.0 < train_fraction < 1.0:
        raise WorkloadError("train_fraction must be strictly between 0 and 1")
    train, test = Trace(), Trace()
    acc = 0.0
    for txn in trace:
        acc += train_fraction
        if acc >= 1.0 - 1e-9:
            acc -= 1.0
            train.append(txn)
        else:
            test.append(txn)
    return train, test


def subsample(trace: Trace, fraction: float) -> Trace:
    """Every ``1/fraction``-th transaction — used for coverage experiments."""
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError("fraction must be in (0, 1]")
    if fraction == 1.0:
        return Trace(list(trace))
    out = Trace()
    acc = 0.0
    for txn in trace:
        acc += fraction
        if acc >= 1.0 - 1e-9:
            acc -= 1.0
            out.append(txn)
    return out
