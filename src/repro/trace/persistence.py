"""Trace persistence: save/load traces as JSON lines.

The paper's framework collects the trace once and reuses it across
partitioner runs (Figure 4); persisting traces makes experiments
restartable and lets users bring traces collected elsewhere. One JSON
object per transaction::

    {"id": 17, "class": "Payment", "a": [["CUSTOMER", [1, 2, 3], 1], ...]}

Keys serialize as JSON arrays and are restored as tuples.
"""

from __future__ import annotations

import json
import sys
from typing import IO, Iterable

from repro.errors import WorkloadError
from repro.trace.events import Trace, TransactionTrace


def transaction_to_dict(txn: TransactionTrace) -> dict:
    out = {
        "id": txn.txn_id,
        "class": txn.class_name,
        "a": [
            [access.table, list(access.key), 1 if access.write else 0]
            for access in txn.accesses
        ],
    }
    if txn.arguments is not None:
        out["args"] = txn.arguments
    return out


def transaction_from_dict(data: dict) -> TransactionTrace:
    try:
        # Intern the names JSON materializes fresh on every line: a large
        # trace repeats each table/class name once per access, and keeping
        # millions of equal-but-distinct strings is pure churn.
        txn = TransactionTrace(int(data["id"]), sys.intern(str(data["class"])))
        for table, key, write in data["a"]:
            txn.record(sys.intern(str(table)), tuple(key), bool(write))
        arguments = data.get("args")
        if arguments is not None:
            if not isinstance(arguments, dict):
                raise TypeError("args must be an object")
            txn.arguments = arguments
        return txn
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"malformed trace record: {exc}") from exc


def dump_trace(trace: Trace, stream: IO[str]) -> int:
    """Write *trace* as JSON lines; returns the number of transactions."""
    count = 0
    for txn in trace:
        stream.write(json.dumps(transaction_to_dict(txn)))
        stream.write("\n")
        count += 1
    return count


def load_trace(stream: IO[str] | Iterable[str]) -> Trace:
    """Read a JSON-lines trace; blank lines are skipped."""
    trace = Trace()
    for line_number, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(
                f"line {line_number}: invalid JSON ({exc})"
            ) from exc
        trace.append(transaction_from_dict(data))
    return trace


def save_trace_file(trace: Trace, path: str) -> int:
    with open(path, "w", encoding="utf-8") as stream:
        return dump_trace(trace, stream)


def load_trace_file(path: str) -> Trace:
    with open(path, "r", encoding="utf-8") as stream:
        return load_trace(stream)
