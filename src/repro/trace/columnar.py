"""Columnar trace representation: interned tuples, flat integer streams.

The object trace (:class:`~repro.trace.events.Trace`) is convenient to
collect but expensive to search: every mapping-independence test re-walks
lists of :class:`TupleAccess` objects and every process worker re-pickles
them. This module interns each distinct ``(table, key)`` pair into a dense
integer *tuple id* once, and stores each transaction class's stream as
flat numpy int columns:

``offsets``
    CSR-style transaction boundaries into the access stream
    (``offsets[i]:offsets[i+1]`` is transaction *i*'s accesses).
``tuple_ids`` / ``write_bits``
    One entry per access: the interned tuple id and the read/write flag.
``uoffsets`` / ``utuple_ids``
    The same stream deduplicated *within* each transaction, in first-access
    order — exactly the ``txn.tuples`` set the mapping-independence
    definition quantifies over.

A :class:`ColumnarTrace` is built once from a :class:`Trace` and shared
zero-copy with ``fork`` workers (module-global inheritance); on spawn
platforms :class:`SharedColumnarTrace` moves the int columns through
``multiprocessing.shared_memory`` instead of pickling them.

:class:`ColumnarClassTrace` views stay interchangeable with ``Trace``
where Phase 2 needs object semantics (greedy table elimination and the
statistics fallback iterate ``txn.tuples`` on the *original* transaction
objects), so those code paths stay bit-identical to the object engine by
construction.
"""

from __future__ import annotations

import pickle
import sys
import time
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import WorkloadError
from repro.trace.events import KeyValue, Trace, TransactionTrace, TupleAccess

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the base image
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def columnar_available() -> bool:
    """Whether the columnar engine can run (numpy importable)."""
    return HAVE_NUMPY


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - numpy is in the base image
        raise RuntimeError(
            "the columnar trace engine requires numpy; "
            "use JECBConfig(engine='object') without it"
        )


class ColumnarClassTrace:
    """One transaction class's stream as flat integer columns.

    Iterable like a :class:`Trace` (yielding :class:`TransactionTrace`
    objects) so object-semantics code paths keep working; the original
    transaction objects are kept when the view was built in-process and
    reconstructed from the columns after an unpickle.
    """

    def __init__(
        self,
        parent: "ColumnarTrace",
        class_name: str,
        txn_ids,
        offsets,
        tuple_ids,
        write_bits,
        uoffsets,
        utuple_ids,
        txns: list[TransactionTrace] | None = None,
    ) -> None:
        self.parent = parent
        self.class_name = class_name
        self.txn_ids = txn_ids
        self.offsets = offsets
        self.tuple_ids = tuple_ids
        self.write_bits = write_bits
        self.uoffsets = uoffsets
        self.utuple_ids = utuple_ids
        self._txns = txns

    # ------------------------------------------------------------------
    # Trace-compatible object view
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def transactions(self) -> list[TransactionTrace]:
        if self._txns is None:
            self._txns = self._materialize()
        return self._txns

    def __iter__(self) -> Iterator[TransactionTrace]:
        return iter(self.transactions)

    @property
    def class_names(self) -> list[str]:
        return [self.class_name] if len(self) else []

    def is_homogeneous(self) -> bool:
        return True

    def _materialize(self) -> list[TransactionTrace]:
        """Rebuild transaction objects from the columns (post-unpickle)."""
        parent = self.parent
        offsets = self.offsets
        tuple_ids = self.tuple_ids
        write_bits = self.write_bits
        txns: list[TransactionTrace] = []
        for i in range(len(self)):
            accesses = [
                TupleAccess(
                    parent.table_of(int(tuple_ids[j])),
                    parent.key_of(int(tuple_ids[j])),
                    bool(write_bits[j]),
                )
                for j in range(int(offsets[i]), int(offsets[i + 1]))
            ]
            txns.append(
                TransactionTrace(int(self.txn_ids[i]), self.class_name, accesses)
            )
        return txns

    # ------------------------------------------------------------------
    # splitting (train/test halves for the statistics fallback)
    # ------------------------------------------------------------------
    def split(
        self, train_fraction: float = 0.5
    ) -> tuple["ColumnarClassTrace", "ColumnarClassTrace"]:
        """Deterministic train/test halves.

        Mirrors :func:`repro.trace.splitter.train_test_split` accumulator
        for accumulator, so both engines select the same transactions.
        """
        if not 0.0 < train_fraction < 1.0:
            raise WorkloadError("train_fraction must be strictly between 0 and 1")
        train_idx: list[int] = []
        test_idx: list[int] = []
        acc = 0.0
        for i in range(len(self)):
            acc += train_fraction
            if acc >= 1.0 - 1e-9:
                acc -= 1.0
                train_idx.append(i)
            else:
                test_idx.append(i)
        return self._subset(train_idx), self._subset(test_idx)

    def _subset(self, indices: list[int]) -> "ColumnarClassTrace":
        _require_numpy()
        offsets = self.offsets
        uoffsets = self.uoffsets

        def gather(offs, ids, bits=None):
            spans = [np.arange(int(offs[i]), int(offs[i + 1])) for i in indices]
            flat = (
                np.concatenate(spans)
                if spans
                else np.empty(0, dtype=np.int64)
            )
            new_offs = np.zeros(len(indices) + 1, dtype=np.int64)
            for n, i in enumerate(indices):
                new_offs[n + 1] = new_offs[n] + int(offs[i + 1]) - int(offs[i])
            picked_bits = bits[flat] if bits is not None else None
            return new_offs, ids[flat], picked_bits

        new_offsets, new_ids, new_bits = gather(
            offsets, self.tuple_ids, self.write_bits
        )
        new_uoffsets, new_uids, _ = gather(uoffsets, self.utuple_ids)
        txns = (
            [self._txns[i] for i in indices] if self._txns is not None else None
        )
        txn_ids = self.txn_ids[np.asarray(indices, dtype=np.int64)] if indices else (
            self.txn_ids[:0]
        )
        return ColumnarClassTrace(
            self.parent,
            self.class_name,
            txn_ids,
            new_offsets,
            new_ids,
            new_bits,
            new_uoffsets,
            new_uids,
            txns=txns,
        )

    def __getstate__(self) -> dict:
        # Workers rebuild transaction objects lazily from the columns; the
        # originals never cross the process boundary.
        state = dict(self.__dict__)
        state["_txns"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"ColumnarClassTrace({self.class_name!r}, txns={len(self)}, "
            f"accesses={len(self.tuple_ids)})"
        )


class _ClassBuilder:
    """Per-class accumulation state during interning."""

    __slots__ = ("txn_ids", "txns", "offsets", "ids", "writes", "uoffsets", "uids")

    def __init__(self) -> None:
        self.txn_ids: list[int] = []
        self.txns: list[TransactionTrace] = []
        self.offsets: list[int] = [0]
        self.ids: list[int] = []
        self.writes: list[int] = []
        self.uoffsets: list[int] = [0]
        self.uids: list[int] = []


class ColumnarTrace:
    """A whole trace with every ``(table, key)`` interned to a dense id.

    Tuple ids are global across tables; ``tuple_table``/``tuple_local``
    map an id back to its table and its position in that table's
    ``keys_of`` list (local key ids are dense per table, in first-seen
    order, so per-table result arrays index directly by local id).
    """

    def __init__(self) -> None:
        self.tables: list[str] = []
        self.table_ids: dict[str, int] = {}
        self.keys_of: list[list[KeyValue]] = []
        self.ids_by_table: list[Any] = []
        self.tuple_table: Any = None
        self.tuple_local: Any = None
        self.views: dict[str, ColumnarClassTrace] = {}
        self.n_transactions = 0
        self.n_accesses = 0
        self.build_seconds = 0.0
        self.intern_seconds = 0.0
        #: the object trace this was built from (identity is used to route
        #: cost evaluation through the columnar kernel); not pickled.
        self.source: Trace | None = None
        self._key_gids: list[dict[KeyValue, int] | None] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        _require_numpy()
        started = time.perf_counter()
        self = cls()
        self.source = trace
        table_ids = self.table_ids
        tables = self.tables
        keys_of = self.keys_of
        key_gids = self._key_gids
        tuple_table: list[int] = []
        tuple_local: list[int] = []
        gids_by_table: list[list[int]] = []
        builders: dict[str, _ClassBuilder] = {}

        for txn in trace:
            builder = builders.get(txn.class_name)
            if builder is None:
                builder = builders[txn.class_name] = _ClassBuilder()
            builder.txn_ids.append(txn.txn_id)
            builder.txns.append(txn)
            seen: set[int] = set()
            for access in txn.accesses:
                tid = table_ids.get(access.table)
                if tid is None:
                    tid = len(tables)
                    table_ids[access.table] = tid
                    tables.append(access.table)
                    keys_of.append([])
                    key_gids.append({})
                    gids_by_table.append([])
                interned = key_gids[tid]
                assert interned is not None
                gid = interned.get(access.key)
                if gid is None:
                    gid = len(tuple_table)
                    interned[access.key] = gid
                    tuple_local.append(len(keys_of[tid]))
                    keys_of[tid].append(access.key)
                    gids_by_table[tid].append(gid)
                    tuple_table.append(tid)
                builder.ids.append(gid)
                builder.writes.append(1 if access.write else 0)
                if gid not in seen:
                    seen.add(gid)
                    builder.uids.append(gid)
            builder.offsets.append(len(builder.ids))
            builder.uoffsets.append(len(builder.uids))
        self.intern_seconds = time.perf_counter() - started

        self.tuple_table = np.asarray(tuple_table, dtype=np.int64)
        self.tuple_local = np.asarray(tuple_local, dtype=np.int64)
        self.ids_by_table = [
            np.asarray(gids, dtype=np.int64) for gids in gids_by_table
        ]
        for name, builder in builders.items():
            view = ColumnarClassTrace(
                self,
                name,
                np.asarray(builder.txn_ids, dtype=np.int64),
                np.asarray(builder.offsets, dtype=np.int64),
                np.asarray(builder.ids, dtype=np.int64),
                np.asarray(builder.writes, dtype=np.uint8),
                np.asarray(builder.uoffsets, dtype=np.int64),
                np.asarray(builder.uids, dtype=np.int64),
                txns=builder.txns,
            )
            self.views[name] = view
            self.n_transactions += len(view)
            self.n_accesses += len(view.tuple_ids)
        self.build_seconds = time.perf_counter() - started
        return self

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return 0 if self.tuple_table is None else len(self.tuple_table)

    @property
    def class_names(self) -> list[str]:
        return list(self.views)

    def class_view(self, name: str) -> ColumnarClassTrace:
        return self.views[name]

    def table_of(self, gid: int) -> str:
        return self.tables[int(self.tuple_table[gid])]

    def key_of(self, gid: int) -> KeyValue:
        return self.keys_of[int(self.tuple_table[gid])][
            int(self.tuple_local[gid])
        ]

    def key_gids(self, tid: int) -> dict[KeyValue, int]:
        """``key -> global tuple id`` for one table (rebuilt after unpickle)."""
        interned = self._key_gids[tid]
        if interned is None:
            interned = dict(
                zip(self.keys_of[tid], (int(g) for g in self.ids_by_table[tid]))
            )
            self._key_gids[tid] = interned
        return interned

    def gid_for(self, table: str, key: KeyValue) -> int | None:
        tid = self.table_ids.get(table)
        if tid is None:
            return None
        return self.key_gids(tid).get(tuple(key))

    def __getstate__(self) -> dict:
        # The interning dicts and the source trace are cheap to rebuild /
        # irrelevant in workers; only the columns and key lists travel.
        state = dict(self.__dict__)
        state["source"] = None
        state["_key_gids"] = [None] * len(self.tables)
        state.pop("_shm", None)  # shm mappings never travel by pickle
        return state

    def __repr__(self) -> str:
        return (
            f"ColumnarTrace(classes={len(self.views)}, "
            f"txns={self.n_transactions}, tuples={self.n_tuples}, "
            f"accesses={self.n_accesses})"
        )


class ColumnarSnapshot:
    """Interned row view of one table, aligned with the trace's key ids.

    ``rows`` is the table's merged live+tombstone snapshot;
    ``row_at(local_id)`` probes it by array index instead of a dict hash,
    and ``column(name)`` materializes one column across all trace keys.
    Rebuilt by the engine when the table's mutation counter moves.
    """

    def __init__(self, table: "Table", keys: list[KeyValue]) -> None:
        self.table = table
        self.version = table.version
        self.rows = table.snapshot_items()
        self.keys = keys
        self._trace_rows: list[dict[str, Any] | None] | None = None
        self._columns: dict[str, list[Any]] = {}

    @property
    def stale(self) -> bool:
        return self.table.version != self.version

    @property
    def trace_rows(self) -> list[dict[str, Any] | None]:
        if self._trace_rows is None:
            rows = self.rows
            self._trace_rows = [rows.get(key) for key in self.keys]
        return self._trace_rows

    def row_at(self, local_id: int) -> dict[str, Any] | None:
        return self.trace_rows[local_id]

    def column(self, name: str) -> list[Any]:
        """One column across all trace keys (``None`` for missing rows)."""
        values = self._columns.get(name)
        if values is None:
            values = [
                None if row is None else row.get(name)
                for row in self.trace_rows
            ]
            self._columns[name] = values
        return values


# ----------------------------------------------------------------------
# shared-memory transport (spawn platforms)
# ----------------------------------------------------------------------
class SharedColumnarTrace:
    """A picklable handle moving a :class:`ColumnarTrace` through shm.

    ``pack`` copies every int column into one ``multiprocessing.shared_memory``
    block; the handle pickles as (segment name + layout + key-list bytes),
    and ``load`` reconstructs a trace whose arrays view the shared block
    zero-copy. The packer must outlive the workers and call ``unlink``.
    """

    def __init__(self, shm_name: str, layout: list, meta: bytes) -> None:
        self.shm_name = shm_name
        self.layout = layout
        self.meta = meta
        self._shm = None

    @classmethod
    def pack(cls, ctrace: ColumnarTrace) -> "SharedColumnarTrace":
        _require_numpy()
        from multiprocessing import shared_memory

        arrays: list[tuple[str, Any]] = [
            ("tuple_table", ctrace.tuple_table),
            ("tuple_local", ctrace.tuple_local),
        ]
        for tid, gids in enumerate(ctrace.ids_by_table):
            arrays.append((f"ids_by_table:{tid}", gids))
        for name, view in ctrace.views.items():
            for part in (
                "txn_ids", "offsets", "tuple_ids",
                "write_bits", "uoffsets", "utuple_ids",
            ):
                arrays.append((f"view:{name}:{part}", getattr(view, part)))

        total = sum(arr.nbytes for _, arr in arrays)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        layout = []
        cursor = 0
        for label, arr in arrays:
            span = arr.nbytes
            shm.buf[cursor : cursor + span] = arr.tobytes()
            layout.append((label, str(arr.dtype), len(arr), cursor))
            cursor += span
        meta = pickle.dumps(
            {
                "tables": ctrace.tables,
                "keys_of": ctrace.keys_of,
                "class_names": list(ctrace.views),
            }
        )
        handle = cls(shm.name, layout, meta)
        handle._shm = shm
        return handle

    def load(self) -> ColumnarTrace:
        _require_numpy()
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=self.shm_name)
        arrays: dict[str, Any] = {}
        for label, dtype, length, cursor in self.layout:
            arrays[label] = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=length, offset=cursor
            )
        meta = pickle.loads(self.meta)
        ctrace = ColumnarTrace()
        ctrace.tables = meta["tables"]
        ctrace.table_ids = {name: i for i, name in enumerate(ctrace.tables)}
        ctrace.keys_of = meta["keys_of"]
        ctrace._key_gids = [None] * len(ctrace.tables)
        ctrace.tuple_table = arrays["tuple_table"]
        ctrace.tuple_local = arrays["tuple_local"]
        ctrace.ids_by_table = [
            arrays[f"ids_by_table:{tid}"] for tid in range(len(ctrace.tables))
        ]
        for name in meta["class_names"]:
            view = ColumnarClassTrace(
                ctrace,
                name,
                arrays[f"view:{name}:txn_ids"],
                arrays[f"view:{name}:offsets"],
                arrays[f"view:{name}:tuple_ids"],
                arrays[f"view:{name}:write_bits"],
                arrays[f"view:{name}:uoffsets"],
                arrays[f"view:{name}:utuple_ids"],
            )
            ctrace.views[name] = view
            ctrace.n_transactions += len(view)
            ctrace.n_accesses += len(view.tuple_ids)
        ctrace._shm = shm  # keep the mapping alive with the trace
        return ctrace

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()

    def unlink(self) -> None:
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None


def intern_table_names(trace: Trace) -> Trace:
    """Deduplicate repeated table-name strings in-place (``sys.intern``).

    Large persisted traces repeat every table name once per access; loading
    them used to materialize millions of equal-but-distinct strings.
    """
    for txn in trace:
        accesses = txn.accesses
        for i, access in enumerate(accesses):
            interned = sys.intern(access.table)
            if interned is not access.table:
                accesses[i] = TupleAccess(interned, access.key, access.write)
    return trace
