"""Trace collection by instrumented execution (Figure 4's trace collector)."""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import WorkloadError
from repro.engine.executor import Executor
from repro.procedures.procedure import StoredProcedure
from repro.storage.database import Database
from repro.trace.events import TransactionTrace, Trace


class TraceCollector:
    """Collects per-transaction tuple accesses while procedures execute.

    The paper instruments each stored procedure with an extra SQL statement
    after every query to capture the tuples it accessed; here the executor
    reports accesses directly through a callback, which is semantically the
    same record: (table, primary key, read/write, transaction id).

    Usage::

        collector = TraceCollector(database)
        collector.run(procedure, {"cust_id": 42})
        trace = collector.trace
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self.trace = Trace()
        self._current: TransactionTrace | None = None
        self._next_id = 0
        self.executor = Executor(database, on_access=self._on_access)

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, class_name: str) -> TransactionTrace:
        if self._current is not None:
            raise WorkloadError("previous transaction still open")
        self._current = TransactionTrace(self._next_id, class_name)
        self._next_id += 1
        return self._current

    def commit(self) -> TransactionTrace:
        if self._current is None:
            raise WorkloadError("no open transaction")
        txn = self._current
        self._current = None
        self.trace.append(txn)
        return txn

    def abort(self) -> None:
        """Drop the open transaction without recording it."""
        self._current = None

    def _on_access(self, table: str, key: tuple, write: bool) -> None:
        if self._current is not None:
            self._current.record(table, key, write)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def run(
        self, procedure: StoredProcedure, arguments: Mapping[str, Any]
    ) -> TransactionTrace:
        """Execute *procedure* once as a traced transaction.

        The invocation arguments are recorded on the transaction so the
        collected trace doubles as a call log for the routing tier.
        """
        txn = self.begin(procedure.name)
        txn.arguments = dict(arguments)
        try:
            procedure.execute(self.executor, arguments)
        except Exception:
            self.abort()
            raise
        return self.commit()
