"""Workload traces: events, collection, splitting, and table classification.

A trace is the paper's Definition-1 view of a workload: each transaction is
the set of tuples it read and wrote, identified by (table, primary key).
Phase 1 of JECB is implemented here: collect the trace through instrumented
execution, classify read-only / read-mostly tables, and split the trace into
per-class homogeneous streams plus train/test halves.
"""

from repro.trace.events import TransactionTrace, Trace, TupleAccess
from repro.trace.collector import TraceCollector
from repro.trace.columnar import (
    ColumnarClassTrace,
    ColumnarSnapshot,
    ColumnarTrace,
    SharedColumnarTrace,
    columnar_available,
)
from repro.trace.stats import TableUsage, classify_tables
from repro.trace.splitter import split_by_class, subsample, train_test_split

__all__ = [
    "TupleAccess",
    "TransactionTrace",
    "Trace",
    "TraceCollector",
    "ColumnarTrace",
    "ColumnarClassTrace",
    "ColumnarSnapshot",
    "SharedColumnarTrace",
    "columnar_available",
    "TableUsage",
    "classify_tables",
    "split_by_class",
    "subsample",
    "train_test_split",
]
