"""Trace data model: tuple accesses, transactions, and whole traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

KeyValue = tuple  # primary-key value tuple


@dataclass(frozen=True)
class TupleAccess:
    """One tuple touched by a transaction.

    Matches the paper's trace record: table name, primary key, and whether
    the access was a read or an update (Section 7.1).
    """

    table: str
    key: KeyValue
    write: bool = False

    def __str__(self) -> str:
        mode = "W" if self.write else "R"
        return f"{mode} {self.table}{self.key}"


@dataclass
class TransactionTrace:
    """All tuple accesses of one executed transaction (Definition 1).

    ``arguments`` optionally carries the stored-procedure invocation
    parameters the transaction ran with. The partitioning search never
    reads them, but they turn a testing trace into a replayable *call log*
    for the routing tier (``Trace.calls``).
    """

    txn_id: int
    class_name: str
    accesses: list[TupleAccess] = field(default_factory=list)
    arguments: dict | None = None

    def record(self, table: str, key: KeyValue, write: bool) -> None:
        self.accesses.append(TupleAccess(table, tuple(key), write))

    @property
    def tuples(self) -> set[tuple[str, KeyValue]]:
        """Distinct (table, key) pairs accessed (the R ∪ W set)."""
        return {(a.table, a.key) for a in self.accesses}

    @property
    def read_set(self) -> set[tuple[str, KeyValue]]:
        return {(a.table, a.key) for a in self.accesses if not a.write}

    @property
    def write_set(self) -> set[tuple[str, KeyValue]]:
        return {(a.table, a.key) for a in self.accesses if a.write}

    @property
    def tables(self) -> set[str]:
        return {a.table for a in self.accesses}

    def __len__(self) -> int:
        return len(self.accesses)


class Trace:
    """A bag of executed transactions.

    When every transaction comes from the same stored procedure the trace is
    a *homogeneous workload*; :meth:`is_homogeneous` checks that.
    """

    def __init__(self, transactions: Sequence[TransactionTrace] = ()) -> None:
        self.transactions: list[TransactionTrace] = list(transactions)

    def append(self, txn: TransactionTrace) -> None:
        self.transactions.append(txn)

    def extend(self, txns: Sequence[TransactionTrace]) -> None:
        self.transactions.extend(txns)

    @property
    def class_names(self) -> list[str]:
        """Distinct transaction-class names, in first-seen order."""
        seen: dict[str, None] = {}
        for txn in self.transactions:
            seen.setdefault(txn.class_name, None)
        return list(seen)

    def is_homogeneous(self) -> bool:
        return len(self.class_names) <= 1

    def calls(self) -> list[tuple[str, dict]]:
        """The trace as a router-ready call log.

        One ``(procedure_name, arguments)`` pair per transaction that
        recorded its invocation arguments; transactions collected without
        arguments (e.g. traces loaded from old files) are skipped.
        """
        return [
            (txn.class_name, txn.arguments)
            for txn in self.transactions
            if txn.arguments is not None
        ]

    def tables(self) -> set[str]:
        """All tables touched anywhere in the trace."""
        out: set[str] = set()
        for txn in self.transactions:
            out |= txn.tables
        return out

    def distinct_tuples(self) -> set[tuple[str, KeyValue]]:
        out: set[tuple[str, KeyValue]] = set()
        for txn in self.transactions:
            out |= txn.tuples
        return out

    def __iter__(self) -> Iterator[TransactionTrace]:
        return iter(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    def __repr__(self) -> str:
        return f"Trace(transactions={len(self.transactions)}, classes={self.class_names})"
