"""Phase-1 table classification: read-only, read-mostly, partitioned."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.schema.database import DatabaseSchema
from repro.trace.events import Trace


class TableUsage(enum.Enum):
    """How a table is used by the workload, per Section 4.

    * READ_ONLY — never written; replicated everywhere for free.
    * READ_MOSTLY — written by a tiny fraction of transactions; replicated
      too, accepting that those writers become distributed by default.
    * PARTITIONED — everything else; these are the tables JECB partitions.
    """

    READ_ONLY = "read-only"
    READ_MOSTLY = "read-mostly"
    PARTITIONED = "partitioned"

    @property
    def replicated(self) -> bool:
        return self is not TableUsage.PARTITIONED


@dataclass
class TableStats:
    """Raw read/write counts for one table."""

    reads: int = 0
    writes: int = 0
    writing_txns: set[int] = field(default_factory=set)


def table_stats(trace: Trace) -> dict[str, TableStats]:
    """Count reads/writes and writing transactions per table."""
    stats: dict[str, TableStats] = {}
    for txn in trace:
        for access in txn.accesses:
            entry = stats.setdefault(access.table, TableStats())
            if access.write:
                entry.writes += 1
                entry.writing_txns.add(txn.txn_id)
            else:
                entry.reads += 1
    return stats


def classify_tables(
    trace: Trace,
    schema: DatabaseSchema,
    read_mostly_threshold: float = 0.02,
) -> dict[str, TableUsage]:
    """Classify every schema table from the workload trace.

    A table is READ_MOSTLY when the fraction of transactions that write it
    is positive but at most *read_mostly_threshold* (e.g. TPC-E's
    LAST_TRADE, written only by the 1%-mix Market-Feed class). Tables the
    trace never touches are READ_ONLY: replicating them costs nothing the
    cost model can see.
    """
    if not 0.0 <= read_mostly_threshold < 1.0:
        raise ValueError("read_mostly_threshold must be in [0, 1)")
    stats = table_stats(trace)
    total_txns = max(len(trace), 1)
    usage: dict[str, TableUsage] = {}
    for table in schema.table_names:
        entry = stats.get(table)
        if entry is None or entry.writes == 0:
            usage[table] = TableUsage.READ_ONLY
            continue
        write_fraction = len(entry.writing_txns) / total_txns
        if write_fraction <= read_mostly_threshold:
            usage[table] = TableUsage.READ_MOSTLY
        else:
            usage[table] = TableUsage.PARTITIONED
    return usage


def partitioned_tables(usage: dict[str, TableUsage]) -> list[str]:
    """Names of the tables JECB must partition, in schema order."""
    return [t for t, u in usage.items() if u is TableUsage.PARTITIONED]
