"""TPC-C stored procedures: SQL text plus control-flow glue.

The SQL here is exactly what JECB's static analyzer sees; the glue only
threads values between statements (loops over order lines / districts),
the way real stored procedures use local variables.
"""

from __future__ import annotations

from repro.procedures.procedure import ProcedureCatalog, ProcedureContext, StoredProcedure

# Standard TPC-C mix percentages.
MIX = {
    "NewOrder": 45.0,
    "Payment": 43.0,
    "OrderStatus": 4.0,
    "Delivery": 4.0,
    "StockLevel": 4.0,
}


def _new_order_body(ctx: ProcedureContext) -> None:
    ctx.run("get_warehouse")
    ctx.run("get_next_order_id")
    ctx.run("advance_order_id")
    ctx.run("get_customer")
    ctx["ol_cnt"] = len(ctx["items"])
    ctx.run("insert_order")
    ctx.run("insert_new_order")
    for number, (item_id, supply_w_id, quantity) in enumerate(ctx["items"], 1):
        ctx.run(
            "get_item_price", i_id=item_id
        )
        ctx.run(
            "update_stock", i_id=item_id, supply_w_id=supply_w_id
        )
        price = ctx.env.get("i_price") or 0
        ctx.run(
            "insert_order_line",
            i_id=item_id,
            supply_w_id=supply_w_id,
            ol_number=number,
            quantity=quantity,
            amount=price * quantity,
        )


def _order_status_body(ctx: ProcedureContext) -> None:
    ctx.run("get_customer")
    ctx.run("get_last_order")
    if ctx.env.get("o_id") is not None:
        ctx.run("get_order_lines")


def _delivery_body(ctx: ProcedureContext) -> None:
    for district in range(1, ctx["district_count"] + 1):
        ctx["d_id"] = district
        ctx.run("oldest_new_order")
        if ctx.env.get("no_o_id") is None:
            continue
        ctx.run("delete_new_order")
        ctx.run("get_order_customer")
        ctx.run("mark_delivered")
        ctx.run("sum_order_lines")
        if ctx.env.get("total") is None:
            ctx["total"] = 0
        ctx.run("credit_customer")


def _stock_level_body(ctx: ProcedureContext) -> None:
    ctx.run("get_next_order_id")
    next_o = ctx.env.get("next_o_id") or 0
    ctx["low_o_id"] = max(next_o - 20, 0)
    result = ctx.run("recent_items")
    ctx["item_ids"] = sorted({row["OL_I_ID"] for row in result.rows})
    if ctx["item_ids"]:
        ctx.run("count_low_stock")


def build_tpcc_catalog() -> ProcedureCatalog:
    """All five TPC-C transaction classes with the standard mix."""
    new_order = StoredProcedure(
        "NewOrder",
        params=["w_id", "d_id", "c_id", "items"],
        statements={
            "get_warehouse": """
                SELECT W_TAX FROM WAREHOUSE WHERE W_ID = @w_id
            """,
            "get_next_order_id": """
                SELECT @o_id = D_NEXT_O_ID FROM DISTRICT
                WHERE D_W_ID = @w_id AND D_ID = @d_id
            """,
            "advance_order_id": """
                UPDATE DISTRICT SET D_NEXT_O_ID = D_NEXT_O_ID + 1
                WHERE D_W_ID = @w_id AND D_ID = @d_id
            """,
            "get_customer": """
                SELECT C_BALANCE FROM CUSTOMER
                WHERE C_W_ID = @w_id AND C_D_ID = @d_id AND C_ID = @c_id
            """,
            "insert_order": """
                INSERT INTO ORDERS
                    (O_W_ID, O_D_ID, O_ID, O_C_ID, O_CARRIER_ID, O_OL_CNT)
                VALUES (@w_id, @d_id, @o_id, @c_id, 0, @ol_cnt)
            """,
            "insert_new_order": """
                INSERT INTO NEW_ORDER (NO_W_ID, NO_D_ID, NO_O_ID)
                VALUES (@w_id, @d_id, @o_id)
            """,
            "get_item_price": """
                SELECT @i_price = I_PRICE FROM ITEM WHERE I_ID = @i_id
            """,
            "update_stock": """
                UPDATE STOCK
                SET S_QUANTITY = S_QUANTITY - 1,
                    S_YTD = S_YTD + 1,
                    S_ORDER_CNT = S_ORDER_CNT + 1
                WHERE S_W_ID = @supply_w_id AND S_I_ID = @i_id
            """,
            "insert_order_line": """
                INSERT INTO ORDER_LINE
                    (OL_W_ID, OL_D_ID, OL_O_ID, OL_NUMBER, OL_I_ID,
                     OL_SUPPLY_W_ID, OL_QUANTITY, OL_AMOUNT)
                VALUES (@w_id, @d_id, @o_id, @ol_number, @i_id,
                        @supply_w_id, @quantity, @amount)
            """,
        },
        body=_new_order_body,
        weight=MIX["NewOrder"],
    )

    payment = StoredProcedure(
        "Payment",
        params=["w_id", "d_id", "c_w_id", "c_d_id", "c_id", "amount", "h_id"],
        statements={
            "pay_warehouse": """
                UPDATE WAREHOUSE SET W_YTD = W_YTD + @amount
                WHERE W_ID = @w_id
            """,
            "pay_district": """
                UPDATE DISTRICT SET D_YTD = D_YTD + @amount
                WHERE D_W_ID = @w_id AND D_ID = @d_id
            """,
            "pay_customer": """
                UPDATE CUSTOMER
                SET C_BALANCE = C_BALANCE - @amount,
                    C_PAYMENT_CNT = C_PAYMENT_CNT + 1
                WHERE C_W_ID = @c_w_id AND C_D_ID = @c_d_id AND C_ID = @c_id
            """,
            "record_history": """
                INSERT INTO HISTORY
                    (H_ID, H_C_W_ID, H_C_D_ID, H_C_ID, H_W_ID, H_D_ID, H_AMOUNT)
                VALUES (@h_id, @c_w_id, @c_d_id, @c_id, @w_id, @d_id, @amount)
            """,
        },
        weight=MIX["Payment"],
    )

    order_status = StoredProcedure(
        "OrderStatus",
        params=["c_w_id", "c_d_id", "c_id"],
        statements={
            "get_customer": """
                SELECT C_BALANCE FROM CUSTOMER
                WHERE C_W_ID = @c_w_id AND C_D_ID = @c_d_id AND C_ID = @c_id
            """,
            "get_last_order": """
                SELECT @o_id = O_ID FROM ORDERS
                WHERE O_W_ID = @c_w_id AND O_D_ID = @c_d_id AND O_C_ID = @c_id
                ORDER BY O_ID DESC LIMIT 1
            """,
            "get_order_lines": """
                SELECT OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY FROM ORDER_LINE
                WHERE OL_W_ID = @c_w_id AND OL_D_ID = @c_d_id AND OL_O_ID = @o_id
            """,
        },
        body=_order_status_body,
        weight=MIX["OrderStatus"],
    )

    delivery = StoredProcedure(
        "Delivery",
        params=["w_id", "carrier_id", "district_count"],
        statements={
            "oldest_new_order": """
                SELECT @no_o_id = NO_O_ID FROM NEW_ORDER
                WHERE NO_W_ID = @w_id AND NO_D_ID = @d_id
                ORDER BY NO_O_ID ASC LIMIT 1
            """,
            "delete_new_order": """
                DELETE FROM NEW_ORDER
                WHERE NO_W_ID = @w_id AND NO_D_ID = @d_id AND NO_O_ID = @no_o_id
            """,
            "get_order_customer": """
                SELECT @c_id = O_C_ID FROM ORDERS
                WHERE O_W_ID = @w_id AND O_D_ID = @d_id AND O_ID = @no_o_id
            """,
            "mark_delivered": """
                UPDATE ORDERS SET O_CARRIER_ID = @carrier_id
                WHERE O_W_ID = @w_id AND O_D_ID = @d_id AND O_ID = @no_o_id
            """,
            "sum_order_lines": """
                SELECT @total = SUM(OL_AMOUNT) FROM ORDER_LINE
                WHERE OL_W_ID = @w_id AND OL_D_ID = @d_id AND OL_O_ID = @no_o_id
            """,
            "credit_customer": """
                UPDATE CUSTOMER
                SET C_BALANCE = C_BALANCE + @total,
                    C_DELIVERY_CNT = C_DELIVERY_CNT + 1
                WHERE C_W_ID = @w_id AND C_D_ID = @d_id AND C_ID = @c_id
            """,
        },
        body=_delivery_body,
        weight=MIX["Delivery"],
    )

    stock_level = StoredProcedure(
        "StockLevel",
        params=["w_id", "d_id", "threshold"],
        statements={
            "get_next_order_id": """
                SELECT @next_o_id = D_NEXT_O_ID FROM DISTRICT
                WHERE D_W_ID = @w_id AND D_ID = @d_id
            """,
            "recent_items": """
                SELECT DISTINCT OL_I_ID FROM ORDER_LINE
                WHERE OL_W_ID = @w_id AND OL_D_ID = @d_id
                  AND OL_O_ID BETWEEN @low_o_id AND @next_o_id
            """,
            "count_low_stock": """
                SELECT COUNT(S_I_ID) FROM STOCK
                WHERE S_W_ID = @w_id AND S_I_ID IN @item_ids
                  AND S_QUANTITY < @threshold
            """,
        },
        body=_stock_level_body,
        weight=MIX["StockLevel"],
    )

    return ProcedureCatalog(
        [new_order, payment, order_status, delivery, stock_level]
    )
