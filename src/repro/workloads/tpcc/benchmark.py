"""TPC-C data loader and transaction driver."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.procedures.procedure import StoredProcedure
from repro.schema.database import DatabaseSchema
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark, nurand
from repro.workloads.tpcc.procedures import build_tpcc_catalog
from repro.workloads.tpcc.schema import build_tpcc_schema


@dataclass
class TpccConfig:
    """Scaled-down cardinalities (the paper's sizes in comments).

    Defaults keep a 128-warehouse experiment laptop-sized; what matters
    for partitioning quality is the topology and access pattern, not the
    raw row counts (DESIGN.md, substitutions).
    """

    warehouses: int = 8
    districts_per_warehouse: int = 4       # spec: 10
    customers_per_district: int = 30       # spec: 3000
    items: int = 100                       # spec: 100000
    initial_orders_per_district: int = 15  # spec: 3000
    max_order_lines: int = 10              # spec: 5..15
    remote_payment_fraction: float = 0.15  # spec: 15%
    remote_supply_fraction: float = 0.01   # spec: 1% per line
    stock_threshold: int = 1_000_000       # record all stock reads


class TpccBenchmark(Benchmark):
    """Order-processing workload over ``config.warehouses`` warehouses."""

    name = "tpcc"

    def __init__(self, config: TpccConfig | None = None) -> None:
        self.config = config or TpccConfig()
        self._history_id = 0

    # ------------------------------------------------------------------
    # schema / catalog
    # ------------------------------------------------------------------
    def build_schema(self) -> DatabaseSchema:
        return build_tpcc_schema()

    def build_catalog(self):
        return build_tpcc_catalog()

    # ------------------------------------------------------------------
    # loader
    # ------------------------------------------------------------------
    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        for item_id in range(1, cfg.items + 1):
            database.insert(
                "ITEM", {"I_ID": item_id, "I_PRICE": rng.randint(1, 100)}
            )
        for w_id in range(1, cfg.warehouses + 1):
            database.insert(
                "WAREHOUSE",
                {"W_ID": w_id, "W_TAX": rng.randint(0, 20), "W_YTD": 0},
            )
            for item_id in range(1, cfg.items + 1):
                database.insert(
                    "STOCK",
                    {
                        "S_W_ID": w_id,
                        "S_I_ID": item_id,
                        "S_QUANTITY": rng.randint(10, 100),
                        "S_YTD": 0,
                        "S_ORDER_CNT": 0,
                    },
                )
            for d_id in range(1, cfg.districts_per_warehouse + 1):
                self._load_district(database, rng, w_id, d_id)

    def _load_district(
        self, database: Database, rng: random.Random, w_id: int, d_id: int
    ) -> None:
        cfg = self.config
        database.insert(
            "DISTRICT",
            {
                "D_W_ID": w_id,
                "D_ID": d_id,
                "D_TAX": rng.randint(0, 20),
                "D_YTD": 0,
                "D_NEXT_O_ID": cfg.initial_orders_per_district + 1,
            },
        )
        for c_id in range(1, cfg.customers_per_district + 1):
            database.insert(
                "CUSTOMER",
                {
                    "C_W_ID": w_id,
                    "C_D_ID": d_id,
                    "C_ID": c_id,
                    "C_BALANCE": 0,
                    "C_PAYMENT_CNT": 0,
                    "C_DELIVERY_CNT": 0,
                },
            )
        for o_id in range(1, cfg.initial_orders_per_district + 1):
            customer = rng.randint(1, cfg.customers_per_district)
            line_count = rng.randint(3, cfg.max_order_lines)
            database.insert(
                "ORDERS",
                {
                    "O_W_ID": w_id,
                    "O_D_ID": d_id,
                    "O_ID": o_id,
                    "O_C_ID": customer,
                    "O_CARRIER_ID": 0 if o_id % 3 == 0 else 1,
                    "O_OL_CNT": line_count,
                },
            )
            # Last third of initial orders are undelivered.
            if o_id % 3 == 0:
                database.insert(
                    "NEW_ORDER",
                    {"NO_W_ID": w_id, "NO_D_ID": d_id, "NO_O_ID": o_id},
                )
            for number in range(1, line_count + 1):
                item_id = rng.randint(1, cfg.items)
                database.insert(
                    "ORDER_LINE",
                    {
                        "OL_W_ID": w_id,
                        "OL_D_ID": d_id,
                        "OL_O_ID": o_id,
                        "OL_NUMBER": number,
                        "OL_I_ID": item_id,
                        "OL_SUPPLY_W_ID": w_id,
                        "OL_QUANTITY": rng.randint(1, 10),
                        "OL_AMOUNT": rng.randint(1, 100),
                    },
                )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run_transaction(
        self,
        collector: TraceCollector,
        procedure: StoredProcedure,
        rng: random.Random,
    ) -> None:
        cfg = self.config
        w_id = rng.randint(1, cfg.warehouses)
        d_id = rng.randint(1, cfg.districts_per_warehouse)
        if procedure.name == "NewOrder":
            items: list[tuple[int, int, int]] = []
            used: set[int] = set()
            for _ in range(rng.randint(3, cfg.max_order_lines)):
                item_id = nurand(rng, 8191 % cfg.items or 1, 1, cfg.items)
                if item_id in used:
                    continue
                used.add(item_id)
                supply = w_id
                if (
                    cfg.warehouses > 1
                    and rng.random() < cfg.remote_supply_fraction
                ):
                    while supply == w_id:
                        supply = rng.randint(1, cfg.warehouses)
                items.append((item_id, supply, rng.randint(1, 10)))
            collector.run(
                procedure,
                {
                    "w_id": w_id,
                    "d_id": d_id,
                    "c_id": self._pick_customer(rng),
                    "items": items,
                },
            )
        elif procedure.name == "Payment":
            c_w_id, c_d_id = w_id, d_id
            if (
                cfg.warehouses > 1
                and rng.random() < cfg.remote_payment_fraction
            ):
                while c_w_id == w_id:
                    c_w_id = rng.randint(1, cfg.warehouses)
                c_d_id = rng.randint(1, cfg.districts_per_warehouse)
            self._history_id += 1
            collector.run(
                procedure,
                {
                    "w_id": w_id,
                    "d_id": d_id,
                    "c_w_id": c_w_id,
                    "c_d_id": c_d_id,
                    "c_id": self._pick_customer(rng),
                    "amount": rng.randint(1, 5000),
                    "h_id": self._history_id,
                },
            )
        elif procedure.name == "OrderStatus":
            collector.run(
                procedure,
                {
                    "c_w_id": w_id,
                    "c_d_id": d_id,
                    "c_id": self._pick_customer(rng),
                },
            )
        elif procedure.name == "Delivery":
            collector.run(
                procedure,
                {
                    "w_id": w_id,
                    "carrier_id": rng.randint(1, 10),
                    "district_count": cfg.districts_per_warehouse,
                },
            )
        elif procedure.name == "StockLevel":
            collector.run(
                procedure,
                {
                    "w_id": w_id,
                    "d_id": d_id,
                    "threshold": cfg.stock_threshold,
                },
            )
        else:  # pragma: no cover - catalog is fixed
            raise ValueError(f"unknown TPC-C procedure {procedure.name}")

    def _pick_customer(self, rng: random.Random) -> int:
        n = self.config.customers_per_district
        return nurand(rng, max(1023 % n, 1), 1, n)
