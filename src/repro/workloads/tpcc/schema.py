"""TPC-C schema: 9 tables, standard primary and foreign keys."""

from __future__ import annotations

from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table


def build_tpcc_schema() -> DatabaseSchema:
    """The TPC-C table/foreign-key topology (payload columns trimmed)."""
    schema = DatabaseSchema("tpcc")

    schema.add_table(
        integer_table("WAREHOUSE", ["W_ID", "W_TAX", "W_YTD"], ["W_ID"])
    )
    schema.add_table(
        integer_table(
            "DISTRICT",
            ["D_W_ID", "D_ID", "D_TAX", "D_YTD", "D_NEXT_O_ID"],
            ["D_W_ID", "D_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "CUSTOMER",
            [
                "C_W_ID",
                "C_D_ID",
                "C_ID",
                "C_BALANCE",
                "C_PAYMENT_CNT",
                "C_DELIVERY_CNT",
            ],
            ["C_W_ID", "C_D_ID", "C_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "HISTORY",
            [
                "H_ID",
                "H_C_W_ID",
                "H_C_D_ID",
                "H_C_ID",
                "H_W_ID",
                "H_D_ID",
                "H_AMOUNT",
            ],
            ["H_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "ORDERS",
            ["O_W_ID", "O_D_ID", "O_ID", "O_C_ID", "O_CARRIER_ID", "O_OL_CNT"],
            ["O_W_ID", "O_D_ID", "O_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "NEW_ORDER",
            ["NO_W_ID", "NO_D_ID", "NO_O_ID"],
            ["NO_W_ID", "NO_D_ID", "NO_O_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "ORDER_LINE",
            [
                "OL_W_ID",
                "OL_D_ID",
                "OL_O_ID",
                "OL_NUMBER",
                "OL_I_ID",
                "OL_SUPPLY_W_ID",
                "OL_QUANTITY",
                "OL_AMOUNT",
            ],
            ["OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_NUMBER"],
        )
    )
    schema.add_table(
        integer_table(
            "STOCK",
            ["S_W_ID", "S_I_ID", "S_QUANTITY", "S_YTD", "S_ORDER_CNT"],
            ["S_W_ID", "S_I_ID"],
        )
    )
    schema.add_table(
        integer_table("ITEM", ["I_ID", "I_PRICE"], ["I_ID"], read_only=True)
    )

    schema.add_foreign_key("DISTRICT", ["D_W_ID"], "WAREHOUSE", ["W_ID"])
    schema.add_foreign_key(
        "CUSTOMER", ["C_W_ID", "C_D_ID"], "DISTRICT", ["D_W_ID", "D_ID"]
    )
    schema.add_foreign_key(
        "HISTORY",
        ["H_C_W_ID", "H_C_D_ID", "H_C_ID"],
        "CUSTOMER",
        ["C_W_ID", "C_D_ID", "C_ID"],
    )
    schema.add_foreign_key(
        "HISTORY", ["H_W_ID", "H_D_ID"], "DISTRICT", ["D_W_ID", "D_ID"]
    )
    schema.add_foreign_key(
        "ORDERS", ["O_W_ID", "O_D_ID"], "DISTRICT", ["D_W_ID", "D_ID"]
    )
    schema.add_foreign_key(
        "ORDERS",
        ["O_W_ID", "O_D_ID", "O_C_ID"],
        "CUSTOMER",
        ["C_W_ID", "C_D_ID", "C_ID"],
    )
    schema.add_foreign_key(
        "NEW_ORDER",
        ["NO_W_ID", "NO_D_ID", "NO_O_ID"],
        "ORDERS",
        ["O_W_ID", "O_D_ID", "O_ID"],
    )
    schema.add_foreign_key(
        "ORDER_LINE",
        ["OL_W_ID", "OL_D_ID", "OL_O_ID"],
        "ORDERS",
        ["O_W_ID", "O_D_ID", "O_ID"],
    )
    schema.add_foreign_key("ORDER_LINE", ["OL_I_ID"], "ITEM", ["I_ID"])
    schema.add_foreign_key(
        "ORDER_LINE",
        ["OL_SUPPLY_W_ID", "OL_I_ID"],
        "STOCK",
        ["S_W_ID", "S_I_ID"],
    )
    schema.add_foreign_key(
        "ORDER_LINE", ["OL_SUPPLY_W_ID"], "WAREHOUSE", ["W_ID"]
    )
    schema.add_foreign_key("STOCK", ["S_W_ID"], "WAREHOUSE", ["W_ID"])
    schema.add_foreign_key("STOCK", ["S_I_ID"], "ITEM", ["I_ID"])
    return schema
