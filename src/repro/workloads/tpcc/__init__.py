"""TPC-C order-processing benchmark (shape-faithful reimplementation).

Nine tables with the standard key/foreign-key topology, five transaction
classes at the standard mix, including the two sources of inherent
distribution under warehouse partitioning: Payment's 15% remote customers
and New-Order's 1%-per-line remote supply warehouses.
"""

from repro.workloads.tpcc.benchmark import TpccBenchmark, TpccConfig
from repro.workloads.tpcc.schema import build_tpcc_schema
from repro.workloads.tpcc.solutions import (
    HORTICULTURE_SPEC,
    WAREHOUSE_SPEC,
    warehouse_partitioning,
)

__all__ = [
    "TpccBenchmark",
    "TpccConfig",
    "build_tpcc_schema",
    "WAREHOUSE_SPEC",
    "HORTICULTURE_SPEC",
    "warehouse_partitioning",
]
