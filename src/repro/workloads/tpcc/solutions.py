"""Known TPC-C partitioning specs.

``WAREHOUSE_SPEC`` is the textbook optimum (everything by warehouse id,
ITEM replicated), which is also what Horticulture's published design
chooses; the Figure-5/6 benches compare partitioners against it.
"""

from __future__ import annotations

from repro.baselines.published import build_spec_partitioning
from repro.core.mapping import IdentityModMapping
from repro.core.solution import DatabasePartitioning
from repro.schema.database import DatabaseSchema

#: Partition every table by its warehouse-id column; replicate ITEM.
WAREHOUSE_SPEC: dict[str, str | None] = {
    "WAREHOUSE": "W_ID",
    "DISTRICT": "D_W_ID",
    "CUSTOMER": "C_W_ID",
    "HISTORY": "H_W_ID",
    "ORDERS": "O_W_ID",
    "NEW_ORDER": "NO_W_ID",
    "ORDER_LINE": "OL_W_ID",
    "STOCK": "S_W_ID",
    "ITEM": None,
}

#: Horticulture's published TPC-C design coincides with the optimum.
HORTICULTURE_SPEC = WAREHOUSE_SPEC


def warehouse_partitioning(
    schema: DatabaseSchema, num_partitions: int
) -> DatabasePartitioning:
    """The reference optimum used as ground truth in Figures 5 and 6."""
    return build_spec_partitioning(
        schema,
        num_partitions,
        WAREHOUSE_SPEC,
        mapping=IdentityModMapping(num_partitions),
        name="tpcc-by-warehouse",
    )
