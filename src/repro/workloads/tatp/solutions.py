"""Known TATP partitioning specs: everything by subscriber id."""

from __future__ import annotations

SUBSCRIBER_SPEC: dict[str, str | None] = {
    "SUBSCRIBER": "S_ID",
    "ACCESS_INFO": "AI_S_ID",
    "SPECIAL_FACILITY": "SF_S_ID",
    "CALL_FORWARDING": "CF_S_ID",
}

#: Horticulture's published TATP design: the subscriber-id optimum.
HORTICULTURE_SPEC = SUBSCRIBER_SPEC
