"""TATP schema: SUBSCRIBER and its three satellite tables."""

from __future__ import annotations

from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table


def build_tatp_schema() -> DatabaseSchema:
    schema = DatabaseSchema("tatp")
    schema.add_table(
        integer_table(
            "SUBSCRIBER",
            ["S_ID", "SUB_NBR", "BIT_1", "VLR_LOCATION"],
            ["S_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "ACCESS_INFO",
            ["AI_S_ID", "AI_TYPE", "AI_DATA1"],
            ["AI_S_ID", "AI_TYPE"],
        )
    )
    schema.add_table(
        integer_table(
            "SPECIAL_FACILITY",
            ["SF_S_ID", "SF_TYPE", "SF_ACTIVE", "SF_DATA"],
            ["SF_S_ID", "SF_TYPE"],
        )
    )
    schema.add_table(
        integer_table(
            "CALL_FORWARDING",
            ["CF_S_ID", "CF_SF_TYPE", "CF_START_TIME", "CF_END_TIME", "CF_NUMBERX"],
            ["CF_S_ID", "CF_SF_TYPE", "CF_START_TIME"],
        )
    )
    schema.add_foreign_key("ACCESS_INFO", ["AI_S_ID"], "SUBSCRIBER", ["S_ID"])
    schema.add_foreign_key(
        "SPECIAL_FACILITY", ["SF_S_ID"], "SUBSCRIBER", ["S_ID"]
    )
    schema.add_foreign_key(
        "CALL_FORWARDING",
        ["CF_S_ID", "CF_SF_TYPE"],
        "SPECIAL_FACILITY",
        ["SF_S_ID", "SF_TYPE"],
    )
    schema.add_foreign_key(
        "CALL_FORWARDING", ["CF_S_ID"], "SUBSCRIBER", ["S_ID"]
    )
    return schema
