"""TATP loader, stored procedures, and driver.

The standard seven transactions at the standard mix; every transaction
touches data of exactly one subscriber, which is what makes TATP
completely partitionable by ``S_ID``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.procedures.procedure import (
    ProcedureCatalog,
    ProcedureContext,
    StoredProcedure,
)
from repro.schema.database import DatabaseSchema
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark
from repro.workloads.tatp.schema import build_tatp_schema

MIX = {
    "GetSubscriberData": 35.0,
    "GetNewDestination": 10.0,
    "GetAccessData": 35.0,
    "UpdateSubscriberData": 2.0,
    "UpdateLocation": 14.0,
    "InsertCallForwarding": 2.0,
    "DeleteCallForwarding": 2.0,
}


@dataclass
class TatpConfig:
    subscribers: int = 1000   # spec: 100k+
    max_satellite_rows: int = 3


def _get_new_destination_body(ctx: ProcedureContext) -> None:
    ctx.run("get_special_facility")
    ctx.run("get_call_forwarding")


def _insert_cf_body(ctx: ProcedureContext) -> None:
    ctx.run("check_subscriber")
    facility = ctx.run("check_special_facility")
    if not facility.rows:
        return  # real TATP: the insert aborts when the facility is absent
    existing = ctx.run("probe_call_forwarding")
    if existing.rows:
        return  # duplicate key: the spec expects ~30% of inserts to fail
    ctx.run("insert_call_forwarding")


def _delete_cf_body(ctx: ProcedureContext) -> None:
    ctx.run("check_subscriber")
    ctx.run("delete_call_forwarding")


def build_tatp_catalog() -> ProcedureCatalog:
    return ProcedureCatalog(
        [
            StoredProcedure(
                "GetSubscriberData",
                params=["s_id"],
                statements={
                    "get": """
                        SELECT S_ID, BIT_1, VLR_LOCATION FROM SUBSCRIBER
                        WHERE S_ID = @s_id
                    """,
                },
                weight=MIX["GetSubscriberData"],
            ),
            StoredProcedure(
                "GetNewDestination",
                params=["s_id", "sf_type", "start_time"],
                statements={
                    "get_special_facility": """
                        SELECT SF_ACTIVE FROM SPECIAL_FACILITY
                        WHERE SF_S_ID = @s_id AND SF_TYPE = @sf_type
                    """,
                    "get_call_forwarding": """
                        SELECT CF_NUMBERX FROM CALL_FORWARDING
                        WHERE CF_S_ID = @s_id AND CF_SF_TYPE = @sf_type
                          AND CF_START_TIME <= @start_time
                    """,
                },
                body=_get_new_destination_body,
                weight=MIX["GetNewDestination"],
            ),
            StoredProcedure(
                "GetAccessData",
                params=["s_id", "ai_type"],
                statements={
                    "get": """
                        SELECT AI_DATA1 FROM ACCESS_INFO
                        WHERE AI_S_ID = @s_id AND AI_TYPE = @ai_type
                    """,
                },
                weight=MIX["GetAccessData"],
            ),
            StoredProcedure(
                "UpdateSubscriberData",
                params=["s_id", "bit", "sf_type"],
                statements={
                    "update_subscriber": """
                        UPDATE SUBSCRIBER SET BIT_1 = @bit WHERE S_ID = @s_id
                    """,
                    "update_special_facility": """
                        UPDATE SPECIAL_FACILITY SET SF_DATA = @bit
                        WHERE SF_S_ID = @s_id AND SF_TYPE = @sf_type
                    """,
                },
                weight=MIX["UpdateSubscriberData"],
            ),
            StoredProcedure(
                "UpdateLocation",
                params=["sub_nbr", "location"],
                statements={
                    "update": """
                        UPDATE SUBSCRIBER SET VLR_LOCATION = @location
                        WHERE SUB_NBR = @sub_nbr
                    """,
                },
                weight=MIX["UpdateLocation"],
            ),
            StoredProcedure(
                "InsertCallForwarding",
                params=["s_id", "sf_type", "start_time", "end_time", "numberx"],
                statements={
                    "check_subscriber": """
                        SELECT S_ID FROM SUBSCRIBER WHERE S_ID = @s_id
                    """,
                    "check_special_facility": """
                        SELECT SF_TYPE FROM SPECIAL_FACILITY
                        WHERE SF_S_ID = @s_id AND SF_TYPE = @sf_type
                    """,
                    "probe_call_forwarding": """
                        SELECT CF_END_TIME FROM CALL_FORWARDING
                        WHERE CF_S_ID = @s_id AND CF_SF_TYPE = @sf_type
                          AND CF_START_TIME = @start_time
                    """,
                    "insert_call_forwarding": """
                        INSERT INTO CALL_FORWARDING
                            (CF_S_ID, CF_SF_TYPE, CF_START_TIME, CF_END_TIME, CF_NUMBERX)
                        VALUES (@s_id, @sf_type, @start_time, @end_time, @numberx)
                    """,
                },
                body=_insert_cf_body,
                weight=MIX["InsertCallForwarding"],
            ),
            StoredProcedure(
                "DeleteCallForwarding",
                params=["s_id", "sf_type", "start_time"],
                statements={
                    "check_subscriber": """
                        SELECT S_ID FROM SUBSCRIBER WHERE S_ID = @s_id
                    """,
                    "delete_call_forwarding": """
                        DELETE FROM CALL_FORWARDING
                        WHERE CF_S_ID = @s_id AND CF_SF_TYPE = @sf_type
                          AND CF_START_TIME = @start_time
                    """,
                },
                body=_delete_cf_body,
                weight=MIX["DeleteCallForwarding"],
            ),
        ]
    )


class TatpBenchmark(Benchmark):
    """Telecom home-location-register workload."""

    name = "tatp"

    def __init__(self, config: TatpConfig | None = None) -> None:
        self.config = config or TatpConfig()

    def build_schema(self) -> DatabaseSchema:
        return build_tatp_schema()

    def build_catalog(self) -> ProcedureCatalog:
        return build_tatp_catalog()

    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        for s_id in range(1, cfg.subscribers + 1):
            database.insert(
                "SUBSCRIBER",
                {
                    "S_ID": s_id,
                    "SUB_NBR": 100000 + s_id,
                    "BIT_1": rng.randint(0, 1),
                    "VLR_LOCATION": rng.randint(1, 1 << 16),
                },
            )
            for ai_type in range(1, rng.randint(1, cfg.max_satellite_rows) + 1):
                database.insert(
                    "ACCESS_INFO",
                    {
                        "AI_S_ID": s_id,
                        "AI_TYPE": ai_type,
                        "AI_DATA1": rng.randint(0, 255),
                    },
                )
            for sf_type in range(1, rng.randint(1, cfg.max_satellite_rows) + 1):
                database.insert(
                    "SPECIAL_FACILITY",
                    {
                        "SF_S_ID": s_id,
                        "SF_TYPE": sf_type,
                        "SF_ACTIVE": rng.randint(0, 1),
                        "SF_DATA": rng.randint(0, 255),
                    },
                )
                for start in range(0, rng.randint(0, 2) * 8, 8):
                    database.insert(
                        "CALL_FORWARDING",
                        {
                            "CF_S_ID": s_id,
                            "CF_SF_TYPE": sf_type,
                            "CF_START_TIME": start,
                            "CF_END_TIME": start + 8,
                            "CF_NUMBERX": rng.randint(1, 1 << 20),
                        },
                    )

    def run_transaction(self, collector, procedure, rng: random.Random) -> None:
        cfg = self.config
        s_id = rng.randint(1, cfg.subscribers)
        if procedure.name == "GetSubscriberData":
            collector.run(procedure, {"s_id": s_id})
        elif procedure.name == "GetNewDestination":
            collector.run(
                procedure,
                {
                    "s_id": s_id,
                    "sf_type": rng.randint(1, cfg.max_satellite_rows),
                    "start_time": rng.choice([0, 8, 16]),
                },
            )
        elif procedure.name == "GetAccessData":
            collector.run(
                procedure,
                {"s_id": s_id, "ai_type": rng.randint(1, cfg.max_satellite_rows)},
            )
        elif procedure.name == "UpdateSubscriberData":
            collector.run(
                procedure,
                {
                    "s_id": s_id,
                    "bit": rng.randint(0, 1),
                    "sf_type": rng.randint(1, cfg.max_satellite_rows),
                },
            )
        elif procedure.name == "UpdateLocation":
            collector.run(
                procedure,
                {"sub_nbr": 100000 + s_id, "location": rng.randint(1, 1 << 16)},
            )
        elif procedure.name == "InsertCallForwarding":
            collector.run(
                procedure,
                {
                    "s_id": s_id,
                    "sf_type": rng.randint(1, cfg.max_satellite_rows),
                    "start_time": rng.choice([1, 9, 17]) + rng.randint(0, 5),
                    "end_time": 24,
                    "numberx": rng.randint(1, 1 << 20),
                },
            )
        elif procedure.name == "DeleteCallForwarding":
            collector.run(
                procedure,
                {
                    "s_id": s_id,
                    "sf_type": rng.randint(1, cfg.max_satellite_rows),
                    "start_time": rng.choice([0, 8, 16]),
                },
            )
        else:  # pragma: no cover
            raise ValueError(procedure.name)
