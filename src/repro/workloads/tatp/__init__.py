"""TATP telecom benchmark: 4 tables keyed by subscriber id."""

from repro.workloads.tatp.benchmark import TatpBenchmark, TatpConfig
from repro.workloads.tatp.schema import build_tatp_schema
from repro.workloads.tatp.solutions import HORTICULTURE_SPEC, SUBSCRIBER_SPEC

__all__ = [
    "TatpBenchmark",
    "TatpConfig",
    "build_tatp_schema",
    "SUBSCRIBER_SPEC",
    "HORTICULTURE_SPEC",
]
