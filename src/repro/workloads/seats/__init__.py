"""SEATS airline-ticketing benchmark."""

from repro.workloads.seats.benchmark import SeatsBenchmark, SeatsConfig

__all__ = ["SeatsBenchmark", "SeatsConfig"]
