"""SEATS: airline ticketing (customers, flights, reservations).

No single table attribute partitions this workload: reservations link
customers to flights. The join-extension insight is that both customers
(via their home airport) and flights (via their departure airport) map to
a common AIRPORT attribute, so JECB can partition everything by airport
— which is why the paper sees a large JECB-vs-Horticulture gap here
(Section 7.4). Customers book almost exclusively out of their home
airport; the small remainder is inherently distributed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.procedures.procedure import (
    ProcedureCatalog,
    ProcedureContext,
    StoredProcedure,
)
from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark

MIX = {
    "DeleteReservation": 10.0,
    "FindFlights": 10.0,
    "FindOpenSeats": 35.0,
    "NewReservation": 20.0,
    "UpdateCustomer": 10.0,
    "UpdateReservation": 15.0,
}


@dataclass
class SeatsConfig:
    airports: int = 10
    customers_per_airport: int = 25
    flights_per_airport: int = 15
    airlines: int = 5
    initial_reservations_per_flight: int = 4
    remote_booking_fraction: float = 0.05


def build_seats_schema() -> DatabaseSchema:
    schema = DatabaseSchema("seats")
    schema.add_table(integer_table("COUNTRY", ["CO_ID"], ["CO_ID"], read_only=True))
    schema.add_table(
        integer_table(
            "AIRPORT", ["AP_ID", "AP_CO_ID"], ["AP_ID"], read_only=True
        )
    )
    schema.add_table(
        integer_table(
            "AIRLINE", ["AL_ID", "AL_CO_ID"], ["AL_ID"], read_only=True
        )
    )
    schema.add_table(
        integer_table(
            "CUSTOMER",
            ["C_ID", "C_BASE_AP_ID", "C_BALANCE"],
            ["C_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "FREQUENT_FLYER",
            ["FF_C_ID", "FF_AL_ID"],
            ["FF_C_ID", "FF_AL_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "FLIGHT",
            [
                "F_ID",
                "F_AL_ID",
                "F_DEPART_AP_ID",
                "F_ARRIVE_AP_ID",
                "F_DEPART_TIME",
                "F_SEATS_LEFT",
            ],
            ["F_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "RESERVATION",
            ["R_ID", "R_C_ID", "R_F_ID", "R_SEAT", "R_PRICE"],
            ["R_ID"],
        )
    )
    schema.add_foreign_key("AIRPORT", ["AP_CO_ID"], "COUNTRY", ["CO_ID"])
    schema.add_foreign_key("AIRLINE", ["AL_CO_ID"], "COUNTRY", ["CO_ID"])
    schema.add_foreign_key("CUSTOMER", ["C_BASE_AP_ID"], "AIRPORT", ["AP_ID"])
    schema.add_foreign_key("FREQUENT_FLYER", ["FF_C_ID"], "CUSTOMER", ["C_ID"])
    schema.add_foreign_key("FREQUENT_FLYER", ["FF_AL_ID"], "AIRLINE", ["AL_ID"])
    schema.add_foreign_key("FLIGHT", ["F_AL_ID"], "AIRLINE", ["AL_ID"])
    schema.add_foreign_key("FLIGHT", ["F_DEPART_AP_ID"], "AIRPORT", ["AP_ID"])
    schema.add_foreign_key("FLIGHT", ["F_ARRIVE_AP_ID"], "AIRPORT", ["AP_ID"])
    schema.add_foreign_key("RESERVATION", ["R_C_ID"], "CUSTOMER", ["C_ID"])
    schema.add_foreign_key("RESERVATION", ["R_F_ID"], "FLIGHT", ["F_ID"])
    return schema


def _delete_reservation_body(ctx: ProcedureContext) -> None:
    ctx.run("find_reservation")
    if ctx.env.get("r_id") is None:
        return
    ctx.run("get_flight")
    ctx.run("delete_reservation")
    ctx.run("release_seat")
    ctx.run("refund_customer")


def _find_flights_body(ctx: ProcedureContext) -> None:
    ctx.run("get_depart_airport")
    ctx.run("get_arrive_airport")
    ctx.run("search_flights")


def _find_open_seats_body(ctx: ProcedureContext) -> None:
    ctx.run("get_flight")
    ctx.run("get_reservations")


def _new_reservation_body(ctx: ProcedureContext) -> None:
    ctx.run("get_customer")
    ctx.run("get_flight_seats")
    if (ctx.env.get("seats_left") or 0) <= 0:
        return
    ctx.run("get_frequent_flyer")
    ctx.run("insert_reservation")
    ctx.run("take_seat")


def _update_customer_body(ctx: ProcedureContext) -> None:
    ctx.run("get_customer")
    ctx.run("update_customer")
    ctx.run("get_frequent_flyer")


def _update_reservation_body(ctx: ProcedureContext) -> None:
    ctx.run("find_reservation")
    if ctx.env.get("r_id") is None:
        return
    ctx.run("get_flight")
    ctx.run("update_reservation")


def build_seats_catalog() -> ProcedureCatalog:
    return ProcedureCatalog(
        [
            StoredProcedure(
                "DeleteReservation",
                params=["c_id", "f_id"],
                statements={
                    "find_reservation": """
                        SELECT @r_id = R_ID, @price = R_PRICE FROM RESERVATION
                        WHERE R_C_ID = @c_id AND R_F_ID = @f_id
                        LIMIT 1
                    """,
                    "get_flight": """
                        SELECT F_DEPART_AP_ID FROM FLIGHT WHERE F_ID = @f_id
                    """,
                    "delete_reservation": """
                        DELETE FROM RESERVATION WHERE R_ID = @r_id
                    """,
                    "release_seat": """
                        UPDATE FLIGHT SET F_SEATS_LEFT = F_SEATS_LEFT + 1
                        WHERE F_ID = @f_id
                    """,
                    "refund_customer": """
                        UPDATE CUSTOMER SET C_BALANCE = C_BALANCE + @price
                        WHERE C_ID = @c_id
                    """,
                },
                body=_delete_reservation_body,
                weight=MIX["DeleteReservation"],
            ),
            StoredProcedure(
                "FindFlights",
                params=["depart_ap_id", "arrive_ap_id", "time_lo", "time_hi"],
                statements={
                    "get_depart_airport": """
                        SELECT AP_CO_ID FROM AIRPORT WHERE AP_ID = @depart_ap_id
                    """,
                    "get_arrive_airport": """
                        SELECT AP_CO_ID FROM AIRPORT WHERE AP_ID = @arrive_ap_id
                    """,
                    "search_flights": """
                        SELECT F_ID, F_AL_ID, F_DEPART_TIME FROM FLIGHT
                        WHERE F_DEPART_AP_ID = @depart_ap_id
                          AND F_DEPART_TIME BETWEEN @time_lo AND @time_hi
                    """,
                },
                body=_find_flights_body,
                weight=MIX["FindFlights"],
            ),
            StoredProcedure(
                "FindOpenSeats",
                params=["f_id"],
                statements={
                    "get_flight": """
                        SELECT F_SEATS_LEFT, F_DEPART_AP_ID FROM FLIGHT
                        WHERE F_ID = @f_id
                    """,
                    "get_reservations": """
                        SELECT R_SEAT FROM RESERVATION WHERE R_F_ID = @f_id
                    """,
                },
                body=_find_open_seats_body,
                weight=MIX["FindOpenSeats"],
            ),
            StoredProcedure(
                "NewReservation",
                params=["r_id", "c_id", "f_id", "seat", "price"],
                statements={
                    "get_customer": """
                        SELECT C_BASE_AP_ID FROM CUSTOMER WHERE C_ID = @c_id
                    """,
                    "get_flight_seats": """
                        SELECT @seats_left = F_SEATS_LEFT FROM FLIGHT
                        WHERE F_ID = @f_id
                    """,
                    "get_frequent_flyer": """
                        SELECT FF_AL_ID FROM FREQUENT_FLYER WHERE FF_C_ID = @c_id
                    """,
                    "insert_reservation": """
                        INSERT INTO RESERVATION (R_ID, R_C_ID, R_F_ID, R_SEAT, R_PRICE)
                        VALUES (@r_id, @c_id, @f_id, @seat, @price)
                    """,
                    "take_seat": """
                        UPDATE FLIGHT SET F_SEATS_LEFT = F_SEATS_LEFT - 1
                        WHERE F_ID = @f_id
                    """,
                },
                body=_new_reservation_body,
                weight=MIX["NewReservation"],
            ),
            StoredProcedure(
                "UpdateCustomer",
                params=["c_id", "delta"],
                statements={
                    "get_customer": """
                        SELECT C_BASE_AP_ID FROM CUSTOMER WHERE C_ID = @c_id
                    """,
                    "update_customer": """
                        UPDATE CUSTOMER SET C_BALANCE = C_BALANCE + @delta
                        WHERE C_ID = @c_id
                    """,
                    "get_frequent_flyer": """
                        SELECT FF_AL_ID FROM FREQUENT_FLYER WHERE FF_C_ID = @c_id
                    """,
                },
                body=_update_customer_body,
                weight=MIX["UpdateCustomer"],
            ),
            StoredProcedure(
                "UpdateReservation",
                params=["c_id", "f_id", "new_seat"],
                statements={
                    "find_reservation": """
                        SELECT @r_id = R_ID FROM RESERVATION
                        WHERE R_C_ID = @c_id AND R_F_ID = @f_id
                        LIMIT 1
                    """,
                    "get_flight": """
                        SELECT F_DEPART_AP_ID FROM FLIGHT WHERE F_ID = @f_id
                    """,
                    "update_reservation": """
                        UPDATE RESERVATION SET R_SEAT = @new_seat
                        WHERE R_ID = @r_id
                    """,
                },
                body=_update_reservation_body,
                weight=MIX["UpdateReservation"],
            ),
        ]
    )


class SeatsBenchmark(Benchmark):
    """Airline ticketing workload over ``config.airports`` airports."""

    name = "seats"

    def __init__(self, config: SeatsConfig | None = None) -> None:
        self.config = config or SeatsConfig()
        self._next_r_id = 0
        #: (customer, flight) pairs with a live reservation, per airport
        self._booked: list[tuple[int, int]] = []

    def build_schema(self) -> DatabaseSchema:
        return build_seats_schema()

    def build_catalog(self) -> ProcedureCatalog:
        return build_seats_catalog()

    # ------------------------------------------------------------------
    # helpers: id layout is airport-major so the driver can stay local
    # ------------------------------------------------------------------
    def _customer_id(self, airport: int, index: int) -> int:
        return (airport - 1) * self.config.customers_per_airport + index

    def _flight_id(self, airport: int, index: int) -> int:
        return (airport - 1) * self.config.flights_per_airport + index

    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        for co in (1, 2):
            database.insert("COUNTRY", {"CO_ID": co})
        for ap in range(1, cfg.airports + 1):
            database.insert("AIRPORT", {"AP_ID": ap, "AP_CO_ID": 1 + ap % 2})
        for al in range(1, cfg.airlines + 1):
            database.insert("AIRLINE", {"AL_ID": al, "AL_CO_ID": 1 + al % 2})
        for ap in range(1, cfg.airports + 1):
            for i in range(1, cfg.customers_per_airport + 1):
                c_id = self._customer_id(ap, i)
                database.insert(
                    "CUSTOMER",
                    {"C_ID": c_id, "C_BASE_AP_ID": ap, "C_BALANCE": 1000},
                )
                database.insert(
                    "FREQUENT_FLYER",
                    {"FF_C_ID": c_id, "FF_AL_ID": 1 + c_id % cfg.airlines},
                )
            for j in range(1, cfg.flights_per_airport + 1):
                f_id = self._flight_id(ap, j)
                arrive = 1 + (ap + j) % cfg.airports
                database.insert(
                    "FLIGHT",
                    {
                        "F_ID": f_id,
                        "F_AL_ID": 1 + f_id % cfg.airlines,
                        "F_DEPART_AP_ID": ap,
                        "F_ARRIVE_AP_ID": arrive,
                        "F_DEPART_TIME": rng.randint(0, 1440),
                        "F_SEATS_LEFT": 50,
                    },
                )
                for _ in range(cfg.initial_reservations_per_flight):
                    c_id = self._customer_id(
                        ap, rng.randint(1, cfg.customers_per_airport)
                    )
                    self._next_r_id += 1
                    database.insert(
                        "RESERVATION",
                        {
                            "R_ID": self._next_r_id,
                            "R_C_ID": c_id,
                            "R_F_ID": f_id,
                            "R_SEAT": rng.randint(1, 50),
                            "R_PRICE": rng.randint(50, 500),
                        },
                    )
                    self._booked.append((c_id, f_id))

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run_transaction(self, collector: TraceCollector, procedure, rng) -> None:
        cfg = self.config
        airport = rng.randint(1, cfg.airports)
        c_id = self._customer_id(airport, rng.randint(1, cfg.customers_per_airport))
        # Customers book from their home airport except for a small
        # remote fraction (the inherently distributed remainder).
        flight_airport = airport
        if rng.random() < cfg.remote_booking_fraction:
            flight_airport = rng.randint(1, cfg.airports)
        f_id = self._flight_id(
            flight_airport, rng.randint(1, cfg.flights_per_airport)
        )
        name = procedure.name
        if name == "DeleteReservation":
            if self._booked:
                c_id, f_id = self._booked.pop(rng.randrange(len(self._booked)))
            collector.run(procedure, {"c_id": c_id, "f_id": f_id})
        elif name == "FindFlights":
            lo = rng.randint(0, 1200)
            collector.run(
                procedure,
                {
                    "depart_ap_id": airport,
                    "arrive_ap_id": 1 + (airport + 1) % cfg.airports,
                    "time_lo": lo,
                    "time_hi": lo + 240,
                },
            )
        elif name == "FindOpenSeats":
            collector.run(procedure, {"f_id": f_id})
        elif name == "NewReservation":
            self._next_r_id += 1
            collector.run(
                procedure,
                {
                    "r_id": self._next_r_id,
                    "c_id": c_id,
                    "f_id": f_id,
                    "seat": rng.randint(1, 50),
                    "price": rng.randint(50, 500),
                },
            )
            self._booked.append((c_id, f_id))
        elif name == "UpdateCustomer":
            collector.run(procedure, {"c_id": c_id, "delta": rng.randint(-50, 50)})
        elif name == "UpdateReservation":
            if self._booked:
                c_id, f_id = rng.choice(self._booked)
            collector.run(
                procedure,
                {"c_id": c_id, "f_id": f_id, "new_seat": rng.randint(1, 50)},
            )
        else:  # pragma: no cover
            raise ValueError(name)
