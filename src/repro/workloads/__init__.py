"""Benchmark workloads: schema + data generator + stored procedures + driver.

Each sub-package reimplements the *shape* of one benchmark the paper
evaluates on — exact table/foreign-key topology and transaction access
patterns (mix percentages, parameter skew, remote-access rates) — with
scaled-down cardinalities (see DESIGN.md, substitutions):

* :mod:`repro.workloads.tpcc` — TPC-C order processing (9 tables).
* :mod:`repro.workloads.tpce` — TPC-E brokerage (33 tables, 15 classes).
* :mod:`repro.workloads.tatp` — TATP telecom (4 tables).
* :mod:`repro.workloads.seats` — SEATS airline ticketing.
* :mod:`repro.workloads.auctionmark` — AuctionMark internet auctions.
* :mod:`repro.workloads.synthetic` — the Section-7.6 implicit-join mix.
"""

from repro.workloads.base import Benchmark, WorkloadBundle

__all__ = ["Benchmark", "WorkloadBundle"]
