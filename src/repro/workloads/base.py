"""Shared benchmark machinery.

A :class:`Benchmark` bundles everything a partitioning experiment needs:
the schema, a deterministic data loader, the stored-procedure catalog
(the SQL text JECB analyzes), and a driver that issues transactions with
the benchmark's mix percentages and parameter distributions.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.procedures.procedure import ProcedureCatalog, StoredProcedure
from repro.schema.database import DatabaseSchema
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.trace.events import Trace


@dataclass
class WorkloadBundle:
    """A loaded database plus its catalog and a collected trace."""

    benchmark: "Benchmark"
    database: Database
    catalog: ProcedureCatalog
    trace: Trace


class Benchmark(ABC):
    """Base class for all benchmark workloads.

    Subclasses set ``name`` and implement the four hooks; ``generate``
    runs the standard pipeline: build schema -> load data -> collect a
    trace of ``num_transactions`` transactions drawn from the mix.
    """

    name: str = "benchmark"

    @abstractmethod
    def build_schema(self) -> DatabaseSchema:
        """Tables, keys and foreign keys."""

    @abstractmethod
    def load(self, database: Database, rng: random.Random) -> None:
        """Populate the database deterministically."""

    @abstractmethod
    def build_catalog(self) -> ProcedureCatalog:
        """The stored procedures (SQL text included)."""

    @abstractmethod
    def run_transaction(
        self,
        collector: TraceCollector,
        procedure: StoredProcedure,
        rng: random.Random,
    ) -> None:
        """Generate arguments for *procedure* and execute it traced."""

    # ------------------------------------------------------------------
    # standard pipeline
    # ------------------------------------------------------------------
    def pick_procedure(
        self, catalog: ProcedureCatalog, rng: random.Random
    ) -> StoredProcedure:
        """Draw a procedure according to the catalog's mix weights."""
        procedures = list(catalog)
        total = sum(p.weight for p in procedures)
        if total <= 0:
            raise WorkloadError(f"{self.name}: procedure weights sum to zero")
        point = rng.random() * total
        acc = 0.0
        for procedure in procedures:
            acc += procedure.weight
            if point < acc:
                return procedure
        return procedures[-1]

    def generate(
        self, num_transactions: int, seed: int = 7, check_integrity: bool = False
    ) -> WorkloadBundle:
        """Build, load, and drive the benchmark end to end."""
        rng = random.Random(seed)
        schema = self.build_schema()
        database = Database(schema)
        self.load(database, rng)
        if check_integrity:
            database.check_integrity()
        catalog = self.build_catalog()
        collector = TraceCollector(database)
        for _ in range(num_transactions):
            procedure = self.pick_procedure(catalog, rng)
            self.run_transaction(collector, procedure, rng)
        return WorkloadBundle(self, database, catalog, collector.trace)


def zipf_choice(rng: random.Random, n: int, skew: float = 1.0) -> int:
    """1-based Zipf-ish draw over ``1..n`` (used for hot-spot parameters).

    Uses inverse-power rejection-free sampling on a precomputed-free
    formula: cheap and deterministic, adequate for workload skew.
    """
    if n <= 1:
        return 1
    # Draw u in (0,1]; map through x = u^(-1/skew) tail distribution.
    u = 1.0 - rng.random()
    value = int(u ** (-1.0 / max(skew, 1e-6)))
    return 1 + (value % n)


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C's NURand non-uniform distribution over [x, y]."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x
