"""AuctionMark internet-auction benchmark."""

from repro.workloads.auctionmark.benchmark import (
    AuctionMarkBenchmark,
    AuctionMarkConfig,
)

__all__ = ["AuctionMarkBenchmark", "AuctionMarkConfig"]
