"""AuctionMark: internet auctions with buyer/seller m-to-n structure.

Most tables hang off USERACCT via foreign keys (items belong to sellers,
bids and purchases belong to buyers), so user id is the natural
partitioning attribute — but bidding and buying connect *two* users, the
m-to-n relationship the paper points to as the reason the workload is not
completely partitionable (Section 7.4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.procedures.procedure import (
    ProcedureCatalog,
    ProcedureContext,
    StoredProcedure,
)
from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark

MIX = {
    "GetItem": 30.0,
    "GetUserInfo": 10.0,
    "NewBid": 20.0,
    "NewItem": 10.0,
    "NewCommentAndResponse": 5.0,
    "NewPurchase": 10.0,
    "UpdateItem": 15.0,
}


@dataclass
class AuctionMarkConfig:
    users: int = 200
    initial_items_per_user: int = 3
    initial_bids_per_item: int = 2
    categories: int = 10
    regions: int = 5


def build_auctionmark_schema() -> DatabaseSchema:
    schema = DatabaseSchema("auctionmark")
    schema.add_table(integer_table("REGION", ["R_ID"], ["R_ID"], read_only=True))
    schema.add_table(
        integer_table(
            "CATEGORY", ["C_ID", "C_PARENT_ID"], ["C_ID"], read_only=True
        )
    )
    schema.add_table(
        integer_table(
            "USERACCT", ["U_ID", "U_R_ID", "U_BALANCE", "U_RATING"], ["U_ID"]
        )
    )
    schema.add_table(
        integer_table(
            "ITEM",
            [
                "I_ID",
                "I_U_ID",
                "I_C_ID",
                "I_CURRENT_PRICE",
                "I_NUM_BIDS",
                "I_STATUS",
            ],
            ["I_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "ITEM_BID",
            ["IB_ID", "IB_I_ID", "IB_BUYER_ID", "IB_BID"],
            ["IB_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "ITEM_COMMENT",
            ["IC_ID", "IC_I_ID", "IC_U_ID"],
            ["IC_ID"],
        )
    )
    schema.add_table(
        integer_table(
            "USERACCT_ITEM",
            ["UI_U_ID", "UI_I_ID"],
            ["UI_U_ID", "UI_I_ID"],
        )
    )
    schema.add_foreign_key("USERACCT", ["U_R_ID"], "REGION", ["R_ID"])
    schema.add_foreign_key("ITEM", ["I_U_ID"], "USERACCT", ["U_ID"])
    schema.add_foreign_key("ITEM", ["I_C_ID"], "CATEGORY", ["C_ID"])
    schema.add_foreign_key("ITEM_BID", ["IB_I_ID"], "ITEM", ["I_ID"])
    schema.add_foreign_key("ITEM_BID", ["IB_BUYER_ID"], "USERACCT", ["U_ID"])
    schema.add_foreign_key("ITEM_COMMENT", ["IC_I_ID"], "ITEM", ["I_ID"])
    schema.add_foreign_key("ITEM_COMMENT", ["IC_U_ID"], "USERACCT", ["U_ID"])
    schema.add_foreign_key("USERACCT_ITEM", ["UI_U_ID"], "USERACCT", ["U_ID"])
    schema.add_foreign_key("USERACCT_ITEM", ["UI_I_ID"], "ITEM", ["I_ID"])
    return schema


def _get_item_body(ctx: ProcedureContext) -> None:
    ctx.run("get_item")
    if ctx.env.get("seller_id") is not None:
        ctx.run("get_seller")


def _get_user_info_body(ctx: ProcedureContext) -> None:
    ctx.run("get_user")
    ctx.run("get_user_items")
    ctx.run("get_purchases")


def _new_bid_body(ctx: ProcedureContext) -> None:
    ctx.run("get_item")
    if ctx.env.get("seller_id") is None:
        return
    ctx.run("get_buyer")
    ctx.run("insert_bid")
    ctx.run("bump_item")


def _new_item_body(ctx: ProcedureContext) -> None:
    ctx.run("get_seller")
    ctx.run("get_category")
    ctx.run("insert_item")


def _new_comment_body(ctx: ProcedureContext) -> None:
    ctx.run("get_item")
    if ctx.env.get("seller_id") is None:
        return
    ctx.run("insert_comment")
    ctx.run("get_seller_for_response")


def _new_purchase_body(ctx: ProcedureContext) -> None:
    ctx.run("get_item")
    if ctx.env.get("seller_id") is None:
        return
    ctx.run("insert_purchase")
    ctx.run("close_item")
    ctx.run("pay_seller")
    ctx.run("charge_buyer")


def _update_item_body(ctx: ProcedureContext) -> None:
    ctx.run("get_item")
    if ctx.env.get("seller_id") is None:
        return
    ctx.run("update_item")


def build_auctionmark_catalog() -> ProcedureCatalog:
    return ProcedureCatalog(
        [
            StoredProcedure(
                "GetItem",
                params=["i_id"],
                statements={
                    "get_item": """
                        SELECT @seller_id = I_U_ID, @price = I_CURRENT_PRICE
                        FROM ITEM WHERE I_ID = @i_id
                    """,
                    "get_seller": """
                        SELECT U_RATING FROM USERACCT WHERE U_ID = @seller_id
                    """,
                },
                body=_get_item_body,
                weight=MIX["GetItem"],
            ),
            StoredProcedure(
                "GetUserInfo",
                params=["u_id"],
                statements={
                    "get_user": """
                        SELECT U_RATING, U_BALANCE FROM USERACCT
                        WHERE U_ID = @u_id
                    """,
                    "get_user_items": """
                        SELECT I_ID, I_STATUS FROM ITEM WHERE I_U_ID = @u_id
                    """,
                    "get_purchases": """
                        SELECT UI_I_ID FROM USERACCT_ITEM WHERE UI_U_ID = @u_id
                    """,
                },
                body=_get_user_info_body,
                weight=MIX["GetUserInfo"],
            ),
            StoredProcedure(
                "NewBid",
                params=["ib_id", "i_id", "buyer_id", "bid"],
                statements={
                    "get_item": """
                        SELECT @seller_id = I_U_ID, @price = I_CURRENT_PRICE
                        FROM ITEM WHERE I_ID = @i_id
                    """,
                    "get_buyer": """
                        SELECT U_BALANCE FROM USERACCT WHERE U_ID = @buyer_id
                    """,
                    "insert_bid": """
                        INSERT INTO ITEM_BID (IB_ID, IB_I_ID, IB_BUYER_ID, IB_BID)
                        VALUES (@ib_id, @i_id, @buyer_id, @bid)
                    """,
                    "bump_item": """
                        UPDATE ITEM
                        SET I_NUM_BIDS = I_NUM_BIDS + 1, I_CURRENT_PRICE = @bid
                        WHERE I_ID = @i_id
                    """,
                },
                body=_new_bid_body,
                weight=MIX["NewBid"],
            ),
            StoredProcedure(
                "NewItem",
                params=["i_id", "seller_id", "category_id", "start_price"],
                statements={
                    "get_seller": """
                        SELECT U_RATING FROM USERACCT WHERE U_ID = @seller_id
                    """,
                    "get_category": """
                        SELECT C_PARENT_ID FROM CATEGORY WHERE C_ID = @category_id
                    """,
                    "insert_item": """
                        INSERT INTO ITEM
                            (I_ID, I_U_ID, I_C_ID, I_CURRENT_PRICE,
                             I_NUM_BIDS, I_STATUS)
                        VALUES (@i_id, @seller_id, @category_id, @start_price, 0, 0)
                    """,
                },
                body=_new_item_body,
                weight=MIX["NewItem"],
            ),
            StoredProcedure(
                "NewCommentAndResponse",
                params=["ic_id", "i_id", "commenter_id"],
                statements={
                    "get_item": """
                        SELECT @seller_id = I_U_ID FROM ITEM WHERE I_ID = @i_id
                    """,
                    "insert_comment": """
                        INSERT INTO ITEM_COMMENT (IC_ID, IC_I_ID, IC_U_ID)
                        VALUES (@ic_id, @i_id, @commenter_id)
                    """,
                    "get_seller_for_response": """
                        SELECT U_RATING FROM USERACCT WHERE U_ID = @seller_id
                    """,
                },
                body=_new_comment_body,
                weight=MIX["NewCommentAndResponse"],
            ),
            StoredProcedure(
                "NewPurchase",
                params=["i_id", "buyer_id", "amount"],
                statements={
                    "get_item": """
                        SELECT @seller_id = I_U_ID FROM ITEM WHERE I_ID = @i_id
                    """,
                    "insert_purchase": """
                        INSERT INTO USERACCT_ITEM (UI_U_ID, UI_I_ID)
                        VALUES (@buyer_id, @i_id)
                    """,
                    "close_item": """
                        UPDATE ITEM SET I_STATUS = 2 WHERE I_ID = @i_id
                    """,
                    "pay_seller": """
                        UPDATE USERACCT SET U_BALANCE = U_BALANCE + @amount
                        WHERE U_ID = @seller_id
                    """,
                    "charge_buyer": """
                        UPDATE USERACCT SET U_BALANCE = U_BALANCE - @amount
                        WHERE U_ID = @buyer_id
                    """,
                },
                body=_new_purchase_body,
                weight=MIX["NewPurchase"],
            ),
            StoredProcedure(
                "UpdateItem",
                params=["i_id", "new_price"],
                statements={
                    "get_item": """
                        SELECT @seller_id = I_U_ID FROM ITEM WHERE I_ID = @i_id
                    """,
                    "update_item": """
                        UPDATE ITEM SET I_CURRENT_PRICE = @new_price
                        WHERE I_ID = @i_id
                    """,
                },
                body=_update_item_body,
                weight=MIX["UpdateItem"],
            ),
        ]
    )


class AuctionMarkBenchmark(Benchmark):
    """Internet-auction workload over ``config.users`` users."""

    name = "auctionmark"

    def __init__(self, config: AuctionMarkConfig | None = None) -> None:
        self.config = config or AuctionMarkConfig()
        self._next_item_id = 0
        self._next_bid_id = 0
        self._next_comment_id = 0
        self._open_items: list[int] = []

    def build_schema(self) -> DatabaseSchema:
        return build_auctionmark_schema()

    def build_catalog(self) -> ProcedureCatalog:
        return build_auctionmark_catalog()

    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        for r in range(1, cfg.regions + 1):
            database.insert("REGION", {"R_ID": r})
        for c in range(1, cfg.categories + 1):
            database.insert(
                "CATEGORY", {"C_ID": c, "C_PARENT_ID": max(1, c // 2)}
            )
        for u in range(1, cfg.users + 1):
            database.insert(
                "USERACCT",
                {
                    "U_ID": u,
                    "U_R_ID": 1 + u % cfg.regions,
                    "U_BALANCE": 1000,
                    "U_RATING": rng.randint(0, 5),
                },
            )
        for u in range(1, cfg.users + 1):
            for _ in range(cfg.initial_items_per_user):
                self._next_item_id += 1
                i_id = self._next_item_id
                database.insert(
                    "ITEM",
                    {
                        "I_ID": i_id,
                        "I_U_ID": u,
                        "I_C_ID": rng.randint(1, cfg.categories),
                        "I_CURRENT_PRICE": rng.randint(1, 100),
                        "I_NUM_BIDS": 0,
                        "I_STATUS": 0,
                    },
                )
                self._open_items.append(i_id)
                for _ in range(cfg.initial_bids_per_item):
                    self._next_bid_id += 1
                    database.insert(
                        "ITEM_BID",
                        {
                            "IB_ID": self._next_bid_id,
                            "IB_I_ID": i_id,
                            "IB_BUYER_ID": rng.randint(1, cfg.users),
                            "IB_BID": rng.randint(1, 100),
                        },
                    )

    def run_transaction(self, collector: TraceCollector, procedure, rng) -> None:
        cfg = self.config
        name = procedure.name
        u_id = rng.randint(1, cfg.users)
        i_id = rng.choice(self._open_items) if self._open_items else 1
        if name == "GetItem":
            collector.run(procedure, {"i_id": i_id})
        elif name == "GetUserInfo":
            collector.run(procedure, {"u_id": u_id})
        elif name == "NewBid":
            self._next_bid_id += 1
            collector.run(
                procedure,
                {
                    "ib_id": self._next_bid_id,
                    "i_id": i_id,
                    "buyer_id": u_id,
                    "bid": rng.randint(1, 200),
                },
            )
        elif name == "NewItem":
            self._next_item_id += 1
            collector.run(
                procedure,
                {
                    "i_id": self._next_item_id,
                    "seller_id": u_id,
                    "category_id": rng.randint(1, cfg.categories),
                    "start_price": rng.randint(1, 100),
                },
            )
            self._open_items.append(self._next_item_id)
        elif name == "NewCommentAndResponse":
            self._next_comment_id += 1
            collector.run(
                procedure,
                {
                    "ic_id": self._next_comment_id,
                    "i_id": i_id,
                    "commenter_id": u_id,
                },
            )
        elif name == "NewPurchase":
            collector.run(
                procedure,
                {"i_id": i_id, "buyer_id": u_id, "amount": rng.randint(1, 200)},
            )
            # A purchased item leaves the auction pool (avoids duplicate
            # purchases of the same item).
            if i_id in self._open_items and len(self._open_items) > 1:
                self._open_items.remove(i_id)
        elif name == "UpdateItem":
            collector.run(
                procedure, {"i_id": i_id, "new_price": rng.randint(1, 200)}
            )
        else:  # pragma: no cover
            raise ValueError(name)
