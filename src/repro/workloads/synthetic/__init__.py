"""Section-7.6 synthetic workload: schema-respecting vs non-key joins."""

from repro.workloads.synthetic.benchmark import (
    SyntheticBenchmark,
    SyntheticConfig,
    group_partitioning,
)

__all__ = ["SyntheticBenchmark", "SyntheticConfig", "group_partitioning"]
