"""Synthetic workload for Section 7.6.

A simple 1-to-n schema — PARENT(A_ID, A_GRP) and CHILD(B_ID, B_A_ID -> A,
B_GRP) — driven by two transaction classes:

* ``SchemaJoin`` follows the key--foreign-key join (all tuples of one
  parent), the case JECB is built for;
* ``GroupJoin`` correlates PARENT and CHILD through the non-key ``GRP``
  columns — a join that does *not* respect the schema, invisible to
  join-extension but natural for a column-based partitioner that hashes
  both tables on their GRP columns.

Sweeping the mix between the two classes reproduces the paper's
observation: JECB wins while schema-respecting transactions dominate, the
column-based solution wins when they do not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.published import build_spec_partitioning
from repro.core.solution import DatabasePartitioning
from repro.procedures.procedure import ProcedureCatalog, StoredProcedure
from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark


@dataclass
class SyntheticConfig:
    parents: int = 400
    children_per_parent: int = 4
    groups: int = 100
    #: fraction of transactions that respect the schema (SchemaJoin)
    schema_join_fraction: float = 0.5


def build_synthetic_schema() -> DatabaseSchema:
    schema = DatabaseSchema("synthetic")
    schema.add_table(
        integer_table("PARENT", ["A_ID", "A_GRP", "A_VAL"], ["A_ID"])
    )
    schema.add_table(
        integer_table(
            "CHILD", ["B_ID", "B_A_ID", "B_GRP", "B_VAL"], ["B_ID"]
        )
    )
    schema.add_foreign_key("CHILD", ["B_A_ID"], "PARENT", ["A_ID"])
    return schema


def build_synthetic_catalog(config: SyntheticConfig) -> ProcedureCatalog:
    share = config.schema_join_fraction
    return ProcedureCatalog(
        [
            StoredProcedure(
                "SchemaJoin",
                params=["a_id", "delta"],
                statements={
                    "read": """
                        SELECT B_VAL FROM CHILD join PARENT on B_A_ID = A_ID
                        WHERE A_ID = @a_id
                    """,
                    "write": """
                        UPDATE CHILD SET B_VAL = B_VAL + @delta
                        WHERE B_A_ID = @a_id
                    """,
                },
                weight=max(share * 100.0, 1e-9),
            ),
            StoredProcedure(
                "GroupJoin",
                params=["grp", "delta"],
                statements={
                    "read_parents": """
                        SELECT A_VAL FROM PARENT WHERE A_GRP = @grp
                    """,
                    "write_parents": """
                        UPDATE PARENT SET A_VAL = A_VAL + @delta
                        WHERE A_GRP = @grp
                    """,
                    "write_children": """
                        UPDATE CHILD SET B_VAL = B_VAL + @delta
                        WHERE B_GRP = @grp
                    """,
                },
                weight=max((1.0 - share) * 100.0, 1e-9),
            ),
        ]
    )


class SyntheticBenchmark(Benchmark):
    """The Section-7.6 mixed workload."""

    name = "synthetic"

    def __init__(self, config: SyntheticConfig | None = None) -> None:
        self.config = config or SyntheticConfig()

    def build_schema(self) -> DatabaseSchema:
        return build_synthetic_schema()

    def build_catalog(self) -> ProcedureCatalog:
        return build_synthetic_catalog(self.config)

    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        b_id = 0
        for a_id in range(1, cfg.parents + 1):
            database.insert(
                "PARENT",
                {
                    "A_ID": a_id,
                    "A_GRP": 1 + a_id % cfg.groups,
                    "A_VAL": rng.randint(0, 100),
                },
            )
            for _ in range(cfg.children_per_parent):
                b_id += 1
                database.insert(
                    "CHILD",
                    {
                        "B_ID": b_id,
                        "B_A_ID": a_id,
                        # The child's group is independent of its parent's:
                        # the GRP correlation does not follow the FK.
                        "B_GRP": 1 + rng.randrange(cfg.groups),
                        "B_VAL": rng.randint(0, 100),
                    },
                )

    def run_transaction(self, collector: TraceCollector, procedure, rng) -> None:
        cfg = self.config
        if procedure.name == "SchemaJoin":
            collector.run(
                procedure,
                {"a_id": rng.randint(1, cfg.parents), "delta": 1},
            )
        else:
            collector.run(
                procedure,
                {"grp": 1 + rng.randrange(cfg.groups), "delta": 1},
            )


def group_partitioning(
    schema: DatabaseSchema, num_partitions: int
) -> DatabasePartitioning:
    """The column-based comparator: hash both tables on their GRP column."""
    return build_spec_partitioning(
        schema,
        num_partitions,
        {"PARENT": "A_GRP", "CHILD": "B_GRP"},
        name="column-based-grp",
    )
