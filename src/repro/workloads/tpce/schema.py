"""TPC-E schema: 33 tables, 50 foreign keys (payload columns trimmed).

Table groups follow the spec: customer tables (CUSTOMER, CUSTOMER_ACCOUNT,
CUSTOMER_TAXRATE, ACCOUNT_PERMISSION, WATCH_LIST, WATCH_ITEM), broker
tables (BROKER, TRADE, TRADE_HISTORY, TRADE_REQUEST, SETTLEMENT,
CASH_TRANSACTION, HOLDING, HOLDING_HISTORY, HOLDING_SUMMARY, CHARGE,
COMMISSION_RATE), market tables (SECURITY, COMPANY, EXCHANGE, INDUSTRY,
SECTOR, DAILY_MARKET, LAST_TRADE, FINANCIAL, NEWS_ITEM, NEWS_XREF,
COMPANY_COMPETITOR), and dimension tables (ADDRESS, ZIP_CODE, STATUS_TYPE,
TRADE_TYPE, TAXRATE).
"""

from __future__ import annotations

from repro.schema.database import DatabaseSchema
from repro.schema.table import integer_table


def build_tpce_schema() -> DatabaseSchema:
    s = DatabaseSchema("tpce")

    # ------------------------------------------------------------------
    # dimension tables
    # ------------------------------------------------------------------
    s.add_table(integer_table("ZIP_CODE", ["ZC_CODE"], ["ZC_CODE"], read_only=True))
    s.add_table(
        integer_table("ADDRESS", ["AD_ID", "AD_ZC_CODE"], ["AD_ID"], read_only=True)
    )
    s.add_table(integer_table("STATUS_TYPE", ["ST_ID"], ["ST_ID"], read_only=True))
    s.add_table(integer_table("TRADE_TYPE", ["TT_ID"], ["TT_ID"], read_only=True))
    s.add_table(
        integer_table("TAXRATE", ["TX_ID", "TX_RATE"], ["TX_ID"], read_only=True)
    )

    # ------------------------------------------------------------------
    # market tables
    # ------------------------------------------------------------------
    s.add_table(integer_table("SECTOR", ["SC_ID"], ["SC_ID"], read_only=True))
    s.add_table(
        integer_table("INDUSTRY", ["IN_ID", "IN_SC_ID"], ["IN_ID"], read_only=True)
    )
    s.add_table(
        integer_table("EXCHANGE", ["EX_ID", "EX_AD_ID"], ["EX_ID"], read_only=True)
    )
    s.add_table(
        integer_table(
            "COMPANY", ["CO_ID", "CO_IN_ID", "CO_AD_ID"], ["CO_ID"], read_only=True
        )
    )
    s.add_table(
        integer_table(
            "COMPANY_COMPETITOR",
            ["CP_CO_ID", "CP_COMP_CO_ID", "CP_IN_ID"],
            ["CP_CO_ID", "CP_COMP_CO_ID"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "FINANCIAL",
            ["FI_CO_ID", "FI_YEAR", "FI_QTR", "FI_REVENUE"],
            ["FI_CO_ID", "FI_YEAR", "FI_QTR"],
            read_only=True,
        )
    )
    s.add_table(integer_table("NEWS_ITEM", ["NI_ID"], ["NI_ID"], read_only=True))
    s.add_table(
        integer_table(
            "NEWS_XREF",
            ["NX_NI_ID", "NX_CO_ID"],
            ["NX_NI_ID", "NX_CO_ID"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "SECURITY",
            ["S_SYMB", "S_CO_ID", "S_EX_ID", "S_NUM_OUT"],
            ["S_SYMB"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "DAILY_MARKET",
            ["DM_DATE", "DM_S_SYMB", "DM_CLOSE"],
            ["DM_DATE", "DM_S_SYMB"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "LAST_TRADE", ["LT_S_SYMB", "LT_PRICE", "LT_VOL"], ["LT_S_SYMB"]
        )
    )

    # ------------------------------------------------------------------
    # customer tables
    # ------------------------------------------------------------------
    s.add_table(
        integer_table(
            "CUSTOMER", ["C_ID", "C_TAX_ID", "C_TIER"], ["C_ID"], read_only=True
        )
    )
    s.add_table(
        integer_table(
            "CUSTOMER_TAXRATE",
            ["CX_TX_ID", "CX_C_ID"],
            ["CX_TX_ID", "CX_C_ID"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "CUSTOMER_ACCOUNT",
            ["CA_ID", "CA_C_ID", "CA_B_ID", "CA_BAL"],
            ["CA_ID"],
        )
    )
    s.add_table(
        integer_table(
            "ACCOUNT_PERMISSION",
            ["AP_CA_ID", "AP_TAX_ID"],
            ["AP_CA_ID", "AP_TAX_ID"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "WATCH_LIST", ["WL_ID", "WL_C_ID"], ["WL_ID"], read_only=True
        )
    )
    s.add_table(
        integer_table(
            "WATCH_ITEM",
            ["WI_WL_ID", "WI_S_SYMB"],
            ["WI_WL_ID", "WI_S_SYMB"],
            read_only=True,
        )
    )

    # ------------------------------------------------------------------
    # broker tables
    # ------------------------------------------------------------------
    s.add_table(
        integer_table(
            "BROKER",
            ["B_ID", "B_NAME", "B_NUM_TRADES", "B_COMM_TOTAL"],
            ["B_ID"],
        )
    )
    s.add_table(
        integer_table(
            "CHARGE",
            ["CH_TT_ID", "CH_C_TIER", "CH_CHRG"],
            ["CH_TT_ID", "CH_C_TIER"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "COMMISSION_RATE",
            ["CR_C_TIER", "CR_TT_ID", "CR_EX_ID", "CR_RATE"],
            ["CR_C_TIER", "CR_TT_ID", "CR_EX_ID"],
            read_only=True,
        )
    )
    s.add_table(
        integer_table(
            "TRADE",
            [
                "T_ID",
                "T_DTS",
                "T_ST_ID",
                "T_TT_ID",
                "T_S_SYMB",
                "T_CA_ID",
                "T_QTY",
                "T_PRICE",
                "T_EXEC_ID",
            ],
            ["T_ID"],
        )
    )
    s.add_table(
        integer_table(
            "TRADE_HISTORY", ["TH_T_ID", "TH_ST_ID"], ["TH_T_ID", "TH_ST_ID"]
        )
    )
    s.add_table(
        integer_table(
            "TRADE_REQUEST",
            ["TR_T_ID", "TR_TT_ID", "TR_S_SYMB", "TR_QTY", "TR_B_ID"],
            ["TR_T_ID"],
        )
    )
    s.add_table(
        integer_table("SETTLEMENT", ["SE_T_ID", "SE_AMT"], ["SE_T_ID"])
    )
    s.add_table(
        integer_table(
            "CASH_TRANSACTION", ["CT_T_ID", "CT_AMT"], ["CT_T_ID"]
        )
    )
    s.add_table(
        integer_table(
            "HOLDING",
            ["H_T_ID", "H_CA_ID", "H_S_SYMB", "H_QTY", "H_PRICE"],
            ["H_T_ID"],
        )
    )
    s.add_table(
        integer_table(
            "HOLDING_HISTORY",
            ["HH_H_T_ID", "HH_T_ID", "HH_BEFORE_QTY", "HH_AFTER_QTY"],
            ["HH_H_T_ID", "HH_T_ID"],
        )
    )
    s.add_table(
        integer_table(
            "HOLDING_SUMMARY",
            ["HS_CA_ID", "HS_S_SYMB", "HS_QTY"],
            ["HS_CA_ID", "HS_S_SYMB"],
        )
    )

    # ------------------------------------------------------------------
    # foreign keys (50)
    # ------------------------------------------------------------------
    fk = s.add_foreign_key
    fk("ADDRESS", ["AD_ZC_CODE"], "ZIP_CODE", ["ZC_CODE"])
    fk("INDUSTRY", ["IN_SC_ID"], "SECTOR", ["SC_ID"])
    fk("EXCHANGE", ["EX_AD_ID"], "ADDRESS", ["AD_ID"])
    fk("COMPANY", ["CO_IN_ID"], "INDUSTRY", ["IN_ID"])
    fk("COMPANY", ["CO_AD_ID"], "ADDRESS", ["AD_ID"])
    fk("COMPANY_COMPETITOR", ["CP_CO_ID"], "COMPANY", ["CO_ID"])
    fk("COMPANY_COMPETITOR", ["CP_COMP_CO_ID"], "COMPANY", ["CO_ID"])
    fk("COMPANY_COMPETITOR", ["CP_IN_ID"], "INDUSTRY", ["IN_ID"])
    fk("FINANCIAL", ["FI_CO_ID"], "COMPANY", ["CO_ID"])
    fk("NEWS_XREF", ["NX_NI_ID"], "NEWS_ITEM", ["NI_ID"])
    fk("NEWS_XREF", ["NX_CO_ID"], "COMPANY", ["CO_ID"])
    fk("SECURITY", ["S_CO_ID"], "COMPANY", ["CO_ID"])
    fk("SECURITY", ["S_EX_ID"], "EXCHANGE", ["EX_ID"])
    fk("DAILY_MARKET", ["DM_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk("LAST_TRADE", ["LT_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk("CUSTOMER_TAXRATE", ["CX_TX_ID"], "TAXRATE", ["TX_ID"])
    fk("CUSTOMER_TAXRATE", ["CX_C_ID"], "CUSTOMER", ["C_ID"])
    fk("CUSTOMER_ACCOUNT", ["CA_C_ID"], "CUSTOMER", ["C_ID"])
    fk("CUSTOMER_ACCOUNT", ["CA_B_ID"], "BROKER", ["B_ID"])
    fk("ACCOUNT_PERMISSION", ["AP_CA_ID"], "CUSTOMER_ACCOUNT", ["CA_ID"])
    fk("WATCH_LIST", ["WL_C_ID"], "CUSTOMER", ["C_ID"])
    fk("WATCH_ITEM", ["WI_WL_ID"], "WATCH_LIST", ["WL_ID"])
    fk("WATCH_ITEM", ["WI_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk("CHARGE", ["CH_TT_ID"], "TRADE_TYPE", ["TT_ID"])
    fk("COMMISSION_RATE", ["CR_TT_ID"], "TRADE_TYPE", ["TT_ID"])
    fk("COMMISSION_RATE", ["CR_EX_ID"], "EXCHANGE", ["EX_ID"])
    fk("TRADE", ["T_ST_ID"], "STATUS_TYPE", ["ST_ID"])
    fk("TRADE", ["T_TT_ID"], "TRADE_TYPE", ["TT_ID"])
    fk("TRADE", ["T_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk("TRADE", ["T_CA_ID"], "CUSTOMER_ACCOUNT", ["CA_ID"])
    fk("TRADE_HISTORY", ["TH_T_ID"], "TRADE", ["T_ID"])
    fk("TRADE_HISTORY", ["TH_ST_ID"], "STATUS_TYPE", ["ST_ID"])
    fk("TRADE_REQUEST", ["TR_T_ID"], "TRADE", ["T_ID"])
    fk("TRADE_REQUEST", ["TR_TT_ID"], "TRADE_TYPE", ["TT_ID"])
    fk("TRADE_REQUEST", ["TR_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk("TRADE_REQUEST", ["TR_B_ID"], "BROKER", ["B_ID"])
    fk("SETTLEMENT", ["SE_T_ID"], "TRADE", ["T_ID"])
    fk("CASH_TRANSACTION", ["CT_T_ID"], "TRADE", ["T_ID"])
    fk("HOLDING", ["H_T_ID"], "TRADE", ["T_ID"])
    fk("HOLDING", ["H_CA_ID"], "CUSTOMER_ACCOUNT", ["CA_ID"])
    fk("HOLDING", ["H_S_SYMB"], "SECURITY", ["S_SYMB"])
    fk(
        "HOLDING",
        ["H_CA_ID", "H_S_SYMB"],
        "HOLDING_SUMMARY",
        ["HS_CA_ID", "HS_S_SYMB"],
    )
    fk("HOLDING_HISTORY", ["HH_H_T_ID"], "TRADE", ["T_ID"])
    fk("HOLDING_HISTORY", ["HH_T_ID"], "TRADE", ["T_ID"])
    fk("HOLDING_SUMMARY", ["HS_CA_ID"], "CUSTOMER_ACCOUNT", ["CA_ID"])
    fk("HOLDING_SUMMARY", ["HS_S_SYMB"], "SECURITY", ["S_SYMB"])
    return s
