"""TPC-E brokerage benchmark (shape-faithful reimplementation).

33 tables with the standard key/foreign-key topology and the 10 activity
types decomposed into 15 transaction classes at Table 3's mix. The
customer -> account -> broker / trade -> security structure is what gives
JECB its join-extension advantage on this benchmark (Section 7.5).
"""

from repro.workloads.tpce.benchmark import TpceBenchmark, TpceConfig
from repro.workloads.tpce.schema import build_tpce_schema
from repro.workloads.tpce.solutions import HORTICULTURE_SPEC, PAPER_MIX

__all__ = [
    "TpceBenchmark",
    "TpceConfig",
    "build_tpce_schema",
    "HORTICULTURE_SPEC",
    "PAPER_MIX",
]
