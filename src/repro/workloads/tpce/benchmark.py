"""TPC-E data loader and transaction driver."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.procedures.procedure import StoredProcedure
from repro.schema.database import DatabaseSchema
from repro.storage.database import Database
from repro.trace.collector import TraceCollector
from repro.workloads.base import Benchmark
from repro.workloads.tpce.procedures import build_tpce_catalog
from repro.workloads.tpce.schema import build_tpce_schema


@dataclass
class TpceConfig:
    """Scaled-down cardinalities (spec sizes are ~500x larger).

    ``accounts_per_customer`` > 1 is essential: it is what makes CA_ID
    trees non-mapping-independent for Customer-Position (Example 7) and
    what separates the C_ID and B_ID candidates in Phase 3.
    """

    customers: int = 100
    min_accounts: int = 3
    max_accounts: int = 5
    brokers: int = 20
    companies: int = 20
    securities_per_company: int = 2
    exchanges: int = 2
    industries: int = 5
    sectors: int = 3
    initial_trades_per_account: int = 12
    loaded_days: int = 6
    transactions_per_day: int = 200
    limit_order_fraction: float = 0.5


class TpceBenchmark(Benchmark):
    """Brokerage workload: 33 tables, 15 transaction classes."""

    name = "tpce"

    def __init__(self, config: TpceConfig | None = None) -> None:
        self.config = config or TpceConfig()
        self._next_trade_id = 0
        self._pending: list[int] = []
        self._txn_count = 0
        self._account_ids: list[int] = []

    @property
    def num_securities(self) -> int:
        return self.config.companies * self.config.securities_per_company

    def build_schema(self) -> DatabaseSchema:
        return build_tpce_schema()

    def build_catalog(self):
        return build_tpce_catalog()

    # ------------------------------------------------------------------
    # loader
    # ------------------------------------------------------------------
    def load(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        self._load_market(database, rng)
        self._load_customers(database, rng)
        self._load_trades(database, rng)

    def _load_market(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        for zc in range(1, 6):
            database.insert("ZIP_CODE", {"ZC_CODE": zc})
        address_count = cfg.companies + cfg.exchanges
        for ad in range(1, address_count + 1):
            database.insert(
                "ADDRESS", {"AD_ID": ad, "AD_ZC_CODE": 1 + ad % 5}
            )
        for st in range(1, 5):
            database.insert("STATUS_TYPE", {"ST_ID": st})
        for tt in (1, 2):  # 1 = market, 2 = limit
            database.insert("TRADE_TYPE", {"TT_ID": tt})
        for tx in range(1, 4):
            database.insert("TAXRATE", {"TX_ID": tx, "TX_RATE": tx * 10})
        for sc in range(1, cfg.sectors + 1):
            database.insert("SECTOR", {"SC_ID": sc})
        for industry in range(1, cfg.industries + 1):
            database.insert(
                "INDUSTRY",
                {"IN_ID": industry, "IN_SC_ID": 1 + industry % cfg.sectors},
            )
        for ex in range(1, cfg.exchanges + 1):
            database.insert(
                "EXCHANGE", {"EX_ID": ex, "EX_AD_ID": cfg.companies + ex}
            )
            for tier in range(1, 4):
                for tt in (1, 2):
                    database.insert(
                        "COMMISSION_RATE",
                        {
                            "CR_C_TIER": tier,
                            "CR_TT_ID": tt,
                            "CR_EX_ID": ex,
                            "CR_RATE": rng.randint(1, 50),
                        },
                    )
        for tier in range(1, 4):
            for tt in (1, 2):
                database.insert(
                    "CHARGE",
                    {"CH_TT_ID": tt, "CH_C_TIER": tier, "CH_CHRG": tier},
                )
        news_id = 0
        symbol = 0
        for co in range(1, cfg.companies + 1):
            database.insert(
                "COMPANY",
                {
                    "CO_ID": co,
                    "CO_IN_ID": 1 + co % cfg.industries,
                    "CO_AD_ID": co,
                },
            )
            competitor = 1 + co % cfg.companies
            if competitor != co:
                database.insert(
                    "COMPANY_COMPETITOR",
                    {
                        "CP_CO_ID": co,
                        "CP_COMP_CO_ID": competitor,
                        "CP_IN_ID": 1 + co % cfg.industries,
                    },
                )
            for year_qtr in range(4):
                database.insert(
                    "FINANCIAL",
                    {
                        "FI_CO_ID": co,
                        "FI_YEAR": 2013,
                        "FI_QTR": year_qtr + 1,
                        "FI_REVENUE": rng.randint(100, 10000),
                    },
                )
            for _ in range(2):
                news_id += 1
                database.insert("NEWS_ITEM", {"NI_ID": news_id})
                database.insert(
                    "NEWS_XREF", {"NX_NI_ID": news_id, "NX_CO_ID": co}
                )
            for _ in range(cfg.securities_per_company):
                symbol += 1
                database.insert(
                    "SECURITY",
                    {
                        "S_SYMB": symbol,
                        "S_CO_ID": co,
                        "S_EX_ID": 1 + symbol % cfg.exchanges,
                        "S_NUM_OUT": rng.randint(1000, 100000),
                    },
                )
                database.insert(
                    "LAST_TRADE",
                    {
                        "LT_S_SYMB": symbol,
                        "LT_PRICE": rng.randint(10, 500),
                        "LT_VOL": 0,
                    },
                )
                for day in range(1, cfg.loaded_days + 1):
                    database.insert(
                        "DAILY_MARKET",
                        {
                            "DM_DATE": day,
                            "DM_S_SYMB": symbol,
                            "DM_CLOSE": rng.randint(10, 500),
                        },
                    )

    def _load_customers(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        ca_id = 0
        for c_id in range(1, cfg.customers + 1):
            database.insert(
                "CUSTOMER",
                {
                    "C_ID": c_id,
                    "C_TAX_ID": 90000 + c_id,
                    "C_TIER": rng.randint(1, 3),
                },
            )
            database.insert(
                "CUSTOMER_TAXRATE",
                {"CX_TX_ID": 1 + c_id % 3, "CX_C_ID": c_id},
            )
            database.insert("WATCH_LIST", {"WL_ID": c_id, "WL_C_ID": c_id})
            for symbol in rng.sample(
                range(1, self.num_securities + 1),
                k=min(rng.randint(3, 6), self.num_securities),
            ):
                database.insert(
                    "WATCH_ITEM", {"WI_WL_ID": c_id, "WI_S_SYMB": symbol}
                )
            account_count = rng.randint(cfg.min_accounts, cfg.max_accounts)
            # Accounts of one customer use distinct brokers (as in the
            # spec's round-robin assignment); this is what separates the
            # C_ID and B_ID candidates in Phase 3.
            broker_ids = rng.sample(
                range(1, cfg.brokers + 1), k=min(account_count, cfg.brokers)
            )
            for i in range(account_count):
                ca_id += 1
                self._account_ids.append(ca_id)
                database.insert(
                    "CUSTOMER_ACCOUNT",
                    {
                        "CA_ID": ca_id,
                        "CA_C_ID": c_id,
                        "CA_B_ID": broker_ids[i % len(broker_ids)],
                        "CA_BAL": rng.randint(1000, 100000),
                    },
                )
                database.insert(
                    "ACCOUNT_PERMISSION",
                    {"AP_CA_ID": ca_id, "AP_TAX_ID": 90000 + c_id},
                )
        for b_id in range(1, cfg.brokers + 1):
            database.insert(
                "BROKER",
                {
                    "B_ID": b_id,
                    "B_NAME": 5000 + b_id,
                    "B_NUM_TRADES": 0,
                    "B_COMM_TOTAL": 0,
                },
            )

    def _load_trades(self, database: Database, rng: random.Random) -> None:
        cfg = self.config
        summaries: dict[tuple[int, int], int] = {}
        for ca_id in self._account_ids:
            for i in range(cfg.initial_trades_per_account):
                self._next_trade_id += 1
                t_id = self._next_trade_id
                symbol = rng.randint(1, self.num_securities)
                qty = rng.randint(1, 100)
                price = rng.randint(10, 500)
                day = rng.randint(1, cfg.loaded_days)
                pending = i == 0 and ca_id % 3 == 0
                database.insert(
                    "TRADE",
                    {
                        "T_ID": t_id,
                        "T_DTS": day,
                        "T_ST_ID": 1 if pending else 2,
                        "T_TT_ID": 1 + t_id % 2,
                        "T_S_SYMB": symbol,
                        "T_CA_ID": ca_id,
                        "T_QTY": qty,
                        "T_PRICE": price,
                        "T_EXEC_ID": 0,
                    },
                )
                database.insert(
                    "TRADE_HISTORY", {"TH_T_ID": t_id, "TH_ST_ID": 1}
                )
                if pending:
                    self._pending.append(t_id)
                    continue
                database.insert(
                    "TRADE_HISTORY", {"TH_T_ID": t_id, "TH_ST_ID": 2}
                )
                database.insert(
                    "SETTLEMENT", {"SE_T_ID": t_id, "SE_AMT": qty * price}
                )
                database.insert(
                    "CASH_TRANSACTION",
                    {"CT_T_ID": t_id, "CT_AMT": qty * price},
                )
                database.insert(
                    "HOLDING",
                    {
                        "H_T_ID": t_id,
                        "H_CA_ID": ca_id,
                        "H_S_SYMB": symbol,
                        "H_QTY": qty,
                        "H_PRICE": price,
                    },
                )
                database.insert(
                    "HOLDING_HISTORY",
                    {
                        "HH_H_T_ID": t_id,
                        "HH_T_ID": t_id,
                        "HH_BEFORE_QTY": 0,
                        "HH_AFTER_QTY": qty,
                    },
                )
                key = (ca_id, symbol)
                if key in summaries:
                    summaries[key] += qty
                    database.update(
                        "HOLDING_SUMMARY",
                        (ca_id, symbol),
                        {"HS_QTY": summaries[key]},
                    )
                else:
                    summaries[key] = qty
                    database.insert(
                        "HOLDING_SUMMARY",
                        {"HS_CA_ID": ca_id, "HS_S_SYMB": symbol, "HS_QTY": qty},
                    )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    @property
    def _current_day(self) -> int:
        return self.config.loaded_days + 1 + (
            self._txn_count // self.config.transactions_per_day
        )

    def run_transaction(
        self,
        collector: TraceCollector,
        procedure: StoredProcedure,
        rng: random.Random,
    ) -> None:
        cfg = self.config
        self._txn_count += 1
        name = procedure.name
        acct_id = rng.choice(self._account_ids)
        cust_id = rng.randint(1, cfg.customers)
        symbol = rng.randint(1, self.num_securities)
        loaded_day = rng.randint(1, cfg.loaded_days)

        if name == "Broker-Volume":
            count = rng.randint(2, min(4, cfg.brokers))
            names = [5000 + b for b in rng.sample(range(1, cfg.brokers + 1), count)]
            collector.run(procedure, {"broker_names": names})
        elif name == "Customer-Position":
            collector.run(
                procedure,
                {
                    "cust_id": cust_id,
                    "tax_id": 90000 + cust_id,
                    "by_tax_id": rng.random() < 0.5,
                },
            )
        elif name == "Market-Feed":
            count = rng.randint(3, 5)
            entries = [
                (s, rng.randint(10, 500))
                for s in rng.sample(range(1, self.num_securities + 1), count)
            ]
            collector.run(procedure, {"entries": entries})
        elif name == "Market-Watch":
            roll = rng.random()
            if roll < 0.60:
                variant = "watch_list"
            elif roll < 0.95:
                variant = "account"
            else:
                variant = "industry"
            collector.run(
                procedure,
                {
                    "variant": variant,
                    "cust_id": cust_id,
                    "acct_id": acct_id,
                    "industry_id": rng.randint(1, cfg.industries),
                    "day": loaded_day,
                },
            )
        elif name == "Security-Detail":
            collector.run(procedure, {"symbol": symbol, "day": loaded_day})
        elif name in ("Trade-Lookup-Frame1", "Trade-Update-Frame1"):
            count = rng.randint(2, 4)
            trade_ids = [
                rng.randint(1, self._next_trade_id) for _ in range(count)
            ]
            args = {"trade_ids": sorted(set(trade_ids))}
            if name == "Trade-Update-Frame1":
                args["exec_id"] = rng.randint(1, 1000)
            collector.run(procedure, args)
        elif name == "Trade-Lookup-Frame2":
            start = rng.randint(1, max(self._current_day - 3, 1))
            collector.run(
                procedure,
                {"acct_id": acct_id, "start_day": start, "end_day": start + 2},
            )
        elif name in ("Trade-Lookup-Frame3", "Trade-Update-Frame3"):
            collector.run(
                procedure,
                {
                    "symbol": symbol,
                    "start_day": loaded_day,
                    "end_day": loaded_day,
                },
            )
        elif name == "Trade-Lookup-Frame4":
            collector.run(procedure, {"acct_id": acct_id, "day": loaded_day})
        elif name == "Trade-Order":
            self._next_trade_id += 1
            is_limit = rng.random() < cfg.limit_order_fraction
            collector.run(
                procedure,
                {
                    "acct_id": acct_id,
                    "symbol": symbol,
                    "qty": rng.randint(1, 100),
                    "trade_type": 2 if is_limit else 1,
                    "t_id": self._next_trade_id,
                    "day": self._current_day,
                    "is_limit": is_limit,
                },
            )
            if not is_limit:
                self._pending.append(self._next_trade_id)
        elif name == "Trade-Result":
            if self._pending:
                trade_id = self._pending.pop(
                    rng.randrange(len(self._pending))
                )
            else:
                trade_id = rng.randint(1, self._next_trade_id)
            collector.run(
                procedure,
                {
                    "trade_id": trade_id,
                    "comm": rng.randint(1, 50),
                    "amount": rng.randint(10, 5000),
                },
            )
        elif name == "Trade-Status":
            collector.run(procedure, {"acct_id": acct_id})
        elif name == "Trade-Update-Frame2":
            collector.run(
                procedure,
                {
                    "acct_id": acct_id,
                    "start_day": loaded_day,
                    "end_day": loaded_day,
                },
            )
        else:  # pragma: no cover - catalog is fixed
            raise ValueError(f"unknown TPC-E procedure {name}")
