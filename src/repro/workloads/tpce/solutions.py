"""Published TPC-E solutions (Table 4's "HC" column).

The paper applied Horticulture's published design directly rather than
re-running its search; this spec reproduces that design: per-table local
hash attributes, with CUSTOMER_ACCOUNT and TRADE_REQUEST replicated.
All tables absent from the spec (the read-only dimension/market tables)
are replicated.
"""

from __future__ import annotations

from repro.workloads.tpce.procedures import PAPER_MIX

__all__ = ["HORTICULTURE_SPEC", "PAPER_MIX"]

HORTICULTURE_SPEC: dict[str, str | None] = {
    "ACCOUNT_PERMISSION": "AP_CA_ID",
    "CUSTOMER_TAXRATE": "CX_C_ID",
    "DAILY_MARKET": "DM_DATE",
    "WATCH_LIST": "WL_C_ID",
    "CASH_TRANSACTION": "CT_T_ID",
    "CUSTOMER_ACCOUNT": None,      # replicated
    "HOLDING": "H_CA_ID",
    "HOLDING_HISTORY": "HH_T_ID",
    "HOLDING_SUMMARY": "HS_CA_ID",
    "SETTLEMENT": "SE_T_ID",
    "TRADE": "T_CA_ID",
    "TRADE_HISTORY": "TH_T_ID",
    "TRADE_REQUEST": None,         # replicated
    "BROKER": "B_ID",
}
