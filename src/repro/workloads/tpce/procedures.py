"""TPC-E stored procedures: the 10 activities as 15 transaction classes.

Mix percentages and the decomposition into frames follow the paper's
Table 3. Each procedure's SQL is complete enough for the static analyzer
to recover the join structure of Figure 3 (e.g. Customer-Position links
CUSTOMER -> CUSTOMER_ACCOUNT -> TRADE/HOLDING_SUMMARY through both
explicit joins and variable-threaded implicit joins).

Status codes: 1 = pending, 2 = completed, 3 = submitted (market feed),
4 = canceled.
"""

from __future__ import annotations

from repro.procedures.procedure import (
    ProcedureCatalog,
    ProcedureContext,
    StoredProcedure,
)

# Table 3 mix percentages.
PAPER_MIX = {
    "Broker-Volume": 4.9,
    "Customer-Position": 13.0,
    "Market-Feed": 1.0,
    "Market-Watch": 18.0,
    "Security-Detail": 14.0,
    "Trade-Lookup-Frame1": 2.4,
    "Trade-Lookup-Frame2": 2.4,
    "Trade-Lookup-Frame3": 2.4,
    "Trade-Lookup-Frame4": 0.8,
    "Trade-Order": 10.1,
    "Trade-Result": 10.0,
    "Trade-Status": 19.0,
    "Trade-Update-Frame1": 0.66,
    "Trade-Update-Frame2": 0.67,
    "Trade-Update-Frame3": 0.67,
}


# ----------------------------------------------------------------------
# glue bodies
# ----------------------------------------------------------------------
def _customer_position_body(ctx: ProcedureContext) -> None:
    if ctx.env.get("by_tax_id"):
        ctx.run("lookup_by_tax")
        if ctx.env.get("cust_id") is None:
            return
    else:
        ctx.run("get_customer")
    accounts = ctx.run("get_accounts")
    symbols: set[int] = set()
    for row in accounts.rows:
        holdings = ctx.run("get_holdings", acct_id=row["CA_ID"])
        symbols |= {h["HS_S_SYMB"] for h in holdings.rows}
    if symbols:
        ctx.run("get_prices", symbols=sorted(symbols))
    if accounts.rows:
        first = accounts.rows[0]["CA_ID"]
        ctx.run("get_trades", acct_id=first)
        ctx.run("get_trade_history", acct_id=first)


def _market_feed_body(ctx: ProcedureContext) -> None:
    for symbol, price in ctx["entries"]:
        ctx.run("update_last_trade", symbol=symbol, price=price)
        requests = ctx.run("find_requests", symbol=symbol)
        for request in requests.rows:
            t_id = request["TR_T_ID"]
            ctx.run("mark_submitted", req_t_id=t_id, price=price)
            ctx.run("delete_request", req_t_id=t_id)
            ctx.run("record_history", req_t_id=t_id)


def _market_watch_body(ctx: ProcedureContext) -> None:
    variant = ctx["variant"]
    symbols: list[int] = []
    if variant == "watch_list":
        ctx.run("get_watch_list")
        if ctx.env.get("wl_id") is not None:
            items = ctx.run("get_watch_items")
            symbols = [r["WI_S_SYMB"] for r in items.rows]
    elif variant == "account":
        holdings = ctx.run("get_holding_symbols")
        symbols = [r["HS_S_SYMB"] for r in holdings.rows]
    else:  # industry
        companies = ctx.run("get_industry_companies")
        for row in companies.rows:
            found = ctx.run("get_company_securities", co_id=row["CO_ID"])
            symbols.extend(r["S_SYMB"] for r in found.rows)
    if symbols:
        ctx.run("get_prices", symbols=sorted(set(symbols)))
        ctx.run("get_closes", symbols=sorted(set(symbols)))


def _security_detail_body(ctx: ProcedureContext) -> None:
    ctx.run("get_security")
    if ctx.env.get("co_id") is None:
        return
    ctx.run("get_company")
    ctx.run("get_address")
    ctx.run("get_zip")
    ctx.run("get_exchange")
    ctx.run("get_industry")
    ctx.run("get_sector")
    ctx.run("get_financials")
    ctx.run("get_daily")
    ctx.run("get_last")
    news = ctx.run("get_news")
    for row in news.rows[:2]:
        ctx.run("read_news", ni_id=row["NX_NI_ID"])
    ctx.run("get_competitors")


def _trade_lookup2_body(ctx: ProcedureContext) -> None:
    found = ctx.run("find_trades")
    ids = [r["T_ID"] for r in found.rows]
    if not ids:
        return
    ctx["found_ids"] = ids
    ctx.run("get_settlements")
    ctx.run("get_cash")
    ctx.run("get_history")


_trade_lookup3_body = _trade_lookup2_body


def _trade_lookup4_body(ctx: ProcedureContext) -> None:
    ctx.run("find_trade")
    if ctx.env.get("t_id") is not None:
        ctx.run("get_holding_history")


def _trade_order_body(ctx: ProcedureContext) -> None:
    ctx.run("get_account")
    if ctx.env.get("b_id") is None:
        return
    ctx.run("get_customer")
    ctx.run("check_permission")
    ctx.run("get_broker")
    ctx.run("get_security")
    ctx.run("get_company")
    ctx.run("get_last_price")
    ctx.run("get_holding_summary")
    ctx.run("get_cust_taxrate")
    ctx.run("get_charge")
    ctx.run("get_commission")
    ctx.run("insert_trade")
    if ctx.env.get("is_limit"):
        ctx.run("insert_request")
    ctx.run("record_history")


def _trade_result_body(ctx: ProcedureContext) -> None:
    ctx.run("get_trade")
    if ctx.env.get("acct_id") is None:
        return
    ctx.run("get_account")
    summary = ctx.run("get_holding_summary")
    if summary.rows:
        ctx.run("update_holding_summary")
    else:
        ctx.run("insert_holding_summary")
    holding = ctx.run("probe_holding")
    if not holding.rows:
        ctx.run("insert_holding")
        ctx.run("insert_holding_history")
    ctx.run("complete_trade")
    history = ctx.run("probe_history")
    if not history.rows:
        ctx.run("record_history")
    settlement = ctx.run("probe_settlement")
    if not settlement.rows:
        ctx.run("insert_settlement")
    cash = ctx.run("probe_cash")
    if not cash.rows:
        ctx.run("insert_cash")
    ctx.run("get_cust_taxrate")
    ctx.run("pay_broker")
    ctx.run("update_balance")


def _trade_status_body(ctx: ProcedureContext) -> None:
    trades = ctx.run("get_trades")
    ctx.run("get_account")
    if ctx.env.get("b_id") is None:
        return
    ctx.run("get_broker")
    ctx.run("get_customer")
    symbols = sorted({r["T_S_SYMB"] for r in trades.rows})
    if symbols:
        ctx.run("get_securities", symbols=symbols)


def _trade_update1_body(ctx: ProcedureContext) -> None:
    ctx.run("get_trades")
    ctx.run("update_exec")
    ctx.run("get_settlements")
    ctx.run("get_cash")
    ctx.run("get_history")


def _trade_update2_body(ctx: ProcedureContext) -> None:
    found = ctx.run("find_trades")
    ids = [r["T_ID"] for r in found.rows]
    if not ids:
        return
    ctx["found_ids"] = ids
    ctx.run("update_settlements")
    ctx.run("get_cash")
    ctx.run("get_history")


def _trade_update3_body(ctx: ProcedureContext) -> None:
    found = ctx.run("find_trades")
    ids = [r["T_ID"] for r in found.rows]
    if not ids:
        return
    ctx["found_ids"] = ids
    ctx.run("update_cash")
    ctx.run("get_settlements")
    ctx.run("get_history")


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
def build_tpce_catalog() -> ProcedureCatalog:  # noqa: PLR0915 - one table per class
    procedures = [
        StoredProcedure(
            "Broker-Volume",
            params=["broker_names"],
            statements={
                "volume": """
                    SELECT SUM(TR_QTY) FROM TRADE_REQUEST join BROKER
                    on TR_B_ID = B_ID
                    WHERE B_NAME IN @broker_names
                """,
            },
            weight=PAPER_MIX["Broker-Volume"],
        ),
        StoredProcedure(
            "Customer-Position",
            params=["cust_id", "tax_id", "by_tax_id"],
            statements={
                "lookup_by_tax": """
                    SELECT @cust_id = C_ID FROM CUSTOMER
                    WHERE C_TAX_ID = @tax_id
                """,
                "get_customer": """
                    SELECT C_TIER FROM CUSTOMER WHERE C_ID = @cust_id
                """,
                "get_accounts": """
                    SELECT CA_ID, CA_BAL FROM CUSTOMER_ACCOUNT
                    WHERE CA_C_ID = @cust_id
                """,
                "get_holdings": """
                    SELECT HS_S_SYMB, HS_QTY FROM HOLDING_SUMMARY
                    WHERE HS_CA_ID = @acct_id
                """,
                "get_prices": """
                    SELECT LT_PRICE FROM LAST_TRADE
                    WHERE LT_S_SYMB IN @symbols
                """,
                "get_trades": """
                    SELECT T_ID, T_ST_ID FROM TRADE
                    WHERE T_CA_ID = @acct_id
                    ORDER BY T_DTS DESC LIMIT 10
                """,
                "get_trade_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY join TRADE
                    on TH_T_ID = T_ID
                    WHERE T_CA_ID = @acct_id
                """,
            },
            body=_customer_position_body,
            weight=PAPER_MIX["Customer-Position"],
        ),
        StoredProcedure(
            "Market-Feed",
            params=["entries"],
            statements={
                "update_last_trade": """
                    UPDATE LAST_TRADE
                    SET LT_PRICE = @price, LT_VOL = LT_VOL + 1
                    WHERE LT_S_SYMB = @symbol
                """,
                "find_requests": """
                    SELECT TR_T_ID, TR_QTY FROM TRADE_REQUEST
                    WHERE TR_S_SYMB = @symbol
                """,
                "mark_submitted": """
                    UPDATE TRADE SET T_ST_ID = 3, T_PRICE = @price
                    WHERE T_ID = @req_t_id
                """,
                "delete_request": """
                    DELETE FROM TRADE_REQUEST WHERE TR_T_ID = @req_t_id
                """,
                "record_history": """
                    INSERT INTO TRADE_HISTORY (TH_T_ID, TH_ST_ID)
                    VALUES (@req_t_id, 3)
                """,
            },
            body=_market_feed_body,
            weight=PAPER_MIX["Market-Feed"],
        ),
        StoredProcedure(
            "Market-Watch",
            params=["variant", "cust_id", "acct_id", "industry_id", "day"],
            statements={
                "get_watch_list": """
                    SELECT @wl_id = WL_ID FROM WATCH_LIST
                    WHERE WL_C_ID = @cust_id
                """,
                "get_watch_items": """
                    SELECT WI_S_SYMB FROM WATCH_ITEM WHERE WI_WL_ID = @wl_id
                """,
                "get_holding_symbols": """
                    SELECT HS_S_SYMB, HS_QTY FROM HOLDING_SUMMARY
                    WHERE HS_CA_ID = @acct_id
                """,
                "get_industry_companies": """
                    SELECT CO_ID FROM COMPANY WHERE CO_IN_ID = @industry_id
                """,
                "get_company_securities": """
                    SELECT S_SYMB FROM SECURITY WHERE S_CO_ID = @co_id
                """,
                "get_prices": """
                    SELECT LT_PRICE FROM LAST_TRADE
                    WHERE LT_S_SYMB IN @symbols
                """,
                "get_closes": """
                    SELECT DM_CLOSE FROM DAILY_MARKET
                    WHERE DM_S_SYMB IN @symbols AND DM_DATE = @day
                """,
            },
            body=_market_watch_body,
            weight=PAPER_MIX["Market-Watch"],
        ),
        StoredProcedure(
            "Security-Detail",
            params=["symbol", "day"],
            statements={
                "get_security": """
                    SELECT @co_id = S_CO_ID, @ex_id = S_EX_ID FROM SECURITY
                    WHERE S_SYMB = @symbol
                """,
                "get_company": """
                    SELECT @in_id = CO_IN_ID, @ad_id = CO_AD_ID FROM COMPANY
                    WHERE CO_ID = @co_id
                """,
                "get_address": """
                    SELECT @zc = AD_ZC_CODE FROM ADDRESS WHERE AD_ID = @ad_id
                """,
                "get_zip": """
                    SELECT ZC_CODE FROM ZIP_CODE WHERE ZC_CODE = @zc
                """,
                "get_exchange": """
                    SELECT EX_AD_ID FROM EXCHANGE WHERE EX_ID = @ex_id
                """,
                "get_industry": """
                    SELECT @sc = IN_SC_ID FROM INDUSTRY WHERE IN_ID = @in_id
                """,
                "get_sector": """
                    SELECT SC_ID FROM SECTOR WHERE SC_ID = @sc
                """,
                "get_financials": """
                    SELECT FI_REVENUE FROM FINANCIAL WHERE FI_CO_ID = @co_id
                """,
                "get_daily": """
                    SELECT DM_CLOSE FROM DAILY_MARKET
                    WHERE DM_S_SYMB = @symbol AND DM_DATE = @day
                """,
                "get_last": """
                    SELECT LT_PRICE FROM LAST_TRADE WHERE LT_S_SYMB = @symbol
                """,
                "get_news": """
                    SELECT NX_NI_ID FROM NEWS_XREF WHERE NX_CO_ID = @co_id
                """,
                "read_news": """
                    SELECT NI_ID FROM NEWS_ITEM WHERE NI_ID = @ni_id
                """,
                "get_competitors": """
                    SELECT CP_COMP_CO_ID FROM COMPANY_COMPETITOR
                    WHERE CP_CO_ID = @co_id
                """,
            },
            body=_security_detail_body,
            weight=PAPER_MIX["Security-Detail"],
        ),
        StoredProcedure(
            "Trade-Lookup-Frame1",
            params=["trade_ids"],
            statements={
                "get_trades": """
                    SELECT T_QTY, T_PRICE, T_CA_ID FROM TRADE
                    WHERE T_ID IN @trade_ids
                """,
                "get_settlements": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN @trade_ids
                """,
                "get_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID IN @trade_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @trade_ids
                """,
            },
            weight=PAPER_MIX["Trade-Lookup-Frame1"],
        ),
        StoredProcedure(
            "Trade-Lookup-Frame2",
            params=["acct_id", "start_day", "end_day"],
            statements={
                "find_trades": """
                    SELECT T_ID FROM TRADE
                    WHERE T_CA_ID = @acct_id
                      AND T_DTS BETWEEN @start_day AND @end_day
                    LIMIT 20
                """,
                "get_settlements": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN @found_ids
                """,
                "get_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID IN @found_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @found_ids
                """,
            },
            body=_trade_lookup2_body,
            weight=PAPER_MIX["Trade-Lookup-Frame2"],
        ),
        StoredProcedure(
            "Trade-Lookup-Frame3",
            params=["symbol", "start_day", "end_day"],
            statements={
                "find_trades": """
                    SELECT T_ID FROM TRADE
                    WHERE T_S_SYMB = @symbol
                      AND T_DTS BETWEEN @start_day AND @end_day
                    LIMIT 20
                """,
                "get_settlements": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN @found_ids
                """,
                "get_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID IN @found_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @found_ids
                """,
            },
            body=_trade_lookup3_body,
            weight=PAPER_MIX["Trade-Lookup-Frame3"],
        ),
        StoredProcedure(
            "Trade-Lookup-Frame4",
            params=["acct_id", "day"],
            statements={
                "find_trade": """
                    SELECT @t_id = T_ID FROM TRADE
                    WHERE T_CA_ID = @acct_id AND T_DTS = @day
                    LIMIT 1
                """,
                "get_holding_history": """
                    SELECT HH_H_T_ID, HH_BEFORE_QTY FROM HOLDING_HISTORY
                    WHERE HH_T_ID = @t_id
                """,
            },
            body=_trade_lookup4_body,
            weight=PAPER_MIX["Trade-Lookup-Frame4"],
        ),
        StoredProcedure(
            "Trade-Order",
            params=[
                "acct_id", "symbol", "qty", "trade_type", "t_id", "day",
                "is_limit",
            ],
            statements={
                "get_account": """
                    SELECT @b_id = CA_B_ID, @cust_id = CA_C_ID
                    FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id
                """,
                "get_customer": """
                    SELECT @tier = C_TIER FROM CUSTOMER WHERE C_ID = @cust_id
                """,
                "check_permission": """
                    SELECT AP_TAX_ID FROM ACCOUNT_PERMISSION
                    WHERE AP_CA_ID = @acct_id
                """,
                "get_broker": """
                    SELECT B_NAME FROM BROKER WHERE B_ID = @b_id
                """,
                "get_security": """
                    SELECT @co_id = S_CO_ID, @ex_id = S_EX_ID FROM SECURITY
                    WHERE S_SYMB = @symbol
                """,
                "get_company": """
                    SELECT CO_IN_ID FROM COMPANY WHERE CO_ID = @co_id
                """,
                "get_last_price": """
                    SELECT @price = LT_PRICE FROM LAST_TRADE
                    WHERE LT_S_SYMB = @symbol
                """,
                "get_holding_summary": """
                    SELECT HS_QTY FROM HOLDING_SUMMARY
                    WHERE HS_CA_ID = @acct_id AND HS_S_SYMB = @symbol
                """,
                "get_cust_taxrate": """
                    SELECT CX_TX_ID FROM CUSTOMER_TAXRATE
                    WHERE CX_C_ID = @cust_id
                """,
                "get_charge": """
                    SELECT CH_CHRG FROM CHARGE
                    WHERE CH_TT_ID = @trade_type AND CH_C_TIER = @tier
                """,
                "get_commission": """
                    SELECT CR_RATE FROM COMMISSION_RATE
                    WHERE CR_C_TIER = @tier AND CR_TT_ID = @trade_type
                      AND CR_EX_ID = @ex_id
                """,
                "insert_trade": """
                    INSERT INTO TRADE
                        (T_ID, T_DTS, T_ST_ID, T_TT_ID, T_S_SYMB, T_CA_ID,
                         T_QTY, T_PRICE, T_EXEC_ID)
                    VALUES (@t_id, @day, 1, @trade_type, @symbol, @acct_id,
                            @qty, @price, 0)
                """,
                "insert_request": """
                    INSERT INTO TRADE_REQUEST
                        (TR_T_ID, TR_TT_ID, TR_S_SYMB, TR_QTY, TR_B_ID)
                    VALUES (@t_id, @trade_type, @symbol, @qty, @b_id)
                """,
                "record_history": """
                    INSERT INTO TRADE_HISTORY (TH_T_ID, TH_ST_ID)
                    VALUES (@t_id, 1)
                """,
            },
            body=_trade_order_body,
            weight=PAPER_MIX["Trade-Order"],
        ),
        StoredProcedure(
            "Trade-Result",
            params=["trade_id", "comm", "amount"],
            statements={
                "get_trade": """
                    SELECT @acct_id = T_CA_ID, @symbol = T_S_SYMB,
                           @qty = T_QTY, @trade_type = T_TT_ID,
                           @price = T_PRICE
                    FROM TRADE WHERE T_ID = @trade_id
                """,
                "get_account": """
                    SELECT @b_id = CA_B_ID, @cust_id = CA_C_ID
                    FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id
                """,
                "get_holding_summary": """
                    SELECT HS_QTY FROM HOLDING_SUMMARY
                    WHERE HS_CA_ID = @acct_id AND HS_S_SYMB = @symbol
                """,
                "update_holding_summary": """
                    UPDATE HOLDING_SUMMARY SET HS_QTY = HS_QTY + @qty
                    WHERE HS_CA_ID = @acct_id AND HS_S_SYMB = @symbol
                """,
                "insert_holding_summary": """
                    INSERT INTO HOLDING_SUMMARY (HS_CA_ID, HS_S_SYMB, HS_QTY)
                    VALUES (@acct_id, @symbol, @qty)
                """,
                "probe_holding": """
                    SELECT H_QTY FROM HOLDING WHERE H_T_ID = @trade_id
                """,
                "insert_holding": """
                    INSERT INTO HOLDING (H_T_ID, H_CA_ID, H_S_SYMB, H_QTY, H_PRICE)
                    VALUES (@trade_id, @acct_id, @symbol, @qty, @price)
                """,
                "insert_holding_history": """
                    INSERT INTO HOLDING_HISTORY
                        (HH_H_T_ID, HH_T_ID, HH_BEFORE_QTY, HH_AFTER_QTY)
                    VALUES (@trade_id, @trade_id, 0, @qty)
                """,
                "complete_trade": """
                    UPDATE TRADE SET T_ST_ID = 2 WHERE T_ID = @trade_id
                """,
                "probe_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID = @trade_id AND TH_ST_ID = 2
                """,
                "record_history": """
                    INSERT INTO TRADE_HISTORY (TH_T_ID, TH_ST_ID)
                    VALUES (@trade_id, 2)
                """,
                "probe_settlement": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID = @trade_id
                """,
                "insert_settlement": """
                    INSERT INTO SETTLEMENT (SE_T_ID, SE_AMT)
                    VALUES (@trade_id, @amount)
                """,
                "probe_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID = @trade_id
                """,
                "insert_cash": """
                    INSERT INTO CASH_TRANSACTION (CT_T_ID, CT_AMT)
                    VALUES (@trade_id, @amount)
                """,
                "get_cust_taxrate": """
                    SELECT CX_TX_ID FROM CUSTOMER_TAXRATE
                    WHERE CX_C_ID = @cust_id
                """,
                "pay_broker": """
                    UPDATE BROKER
                    SET B_NUM_TRADES = B_NUM_TRADES + 1,
                        B_COMM_TOTAL = B_COMM_TOTAL + @comm
                    WHERE B_ID = @b_id
                """,
                "update_balance": """
                    UPDATE CUSTOMER_ACCOUNT SET CA_BAL = CA_BAL + @amount
                    WHERE CA_ID = @acct_id
                """,
            },
            body=_trade_result_body,
            weight=PAPER_MIX["Trade-Result"],
        ),
        StoredProcedure(
            "Trade-Status",
            params=["acct_id"],
            statements={
                "get_trades": """
                    SELECT T_ID, T_ST_ID, T_TT_ID, T_S_SYMB, T_DTS FROM TRADE
                    WHERE T_CA_ID = @acct_id
                    ORDER BY T_DTS DESC LIMIT 50
                """,
                "get_account": """
                    SELECT @b_id = CA_B_ID, @cust_id = CA_C_ID
                    FROM CUSTOMER_ACCOUNT WHERE CA_ID = @acct_id
                """,
                "get_broker": """
                    SELECT B_NAME FROM BROKER WHERE B_ID = @b_id
                """,
                "get_customer": """
                    SELECT C_TIER FROM CUSTOMER WHERE C_ID = @cust_id
                """,
                "get_securities": """
                    SELECT S_NUM_OUT FROM SECURITY WHERE S_SYMB IN @symbols
                """,
            },
            body=_trade_status_body,
            weight=PAPER_MIX["Trade-Status"],
        ),
        StoredProcedure(
            "Trade-Update-Frame1",
            params=["trade_ids", "exec_id"],
            statements={
                "get_trades": """
                    SELECT T_QTY, T_PRICE FROM TRADE WHERE T_ID IN @trade_ids
                """,
                "update_exec": """
                    UPDATE TRADE SET T_EXEC_ID = @exec_id
                    WHERE T_ID IN @trade_ids
                """,
                "get_settlements": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN @trade_ids
                """,
                "get_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID IN @trade_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @trade_ids
                """,
            },
            body=_trade_update1_body,
            weight=PAPER_MIX["Trade-Update-Frame1"],
        ),
        StoredProcedure(
            "Trade-Update-Frame2",
            params=["acct_id", "start_day", "end_day"],
            statements={
                "find_trades": """
                    SELECT T_ID FROM TRADE
                    WHERE T_CA_ID = @acct_id
                      AND T_DTS BETWEEN @start_day AND @end_day
                    LIMIT 20
                """,
                "update_settlements": """
                    UPDATE SETTLEMENT SET SE_AMT = SE_AMT + 1
                    WHERE SE_T_ID IN @found_ids
                """,
                "get_cash": """
                    SELECT CT_AMT FROM CASH_TRANSACTION
                    WHERE CT_T_ID IN @found_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @found_ids
                """,
            },
            body=_trade_update2_body,
            weight=PAPER_MIX["Trade-Update-Frame2"],
        ),
        StoredProcedure(
            "Trade-Update-Frame3",
            params=["symbol", "start_day", "end_day"],
            statements={
                "find_trades": """
                    SELECT T_ID FROM TRADE
                    WHERE T_S_SYMB = @symbol
                      AND T_DTS BETWEEN @start_day AND @end_day
                    LIMIT 20
                """,
                "update_cash": """
                    UPDATE CASH_TRANSACTION SET CT_AMT = CT_AMT + 1
                    WHERE CT_T_ID IN @found_ids
                """,
                "get_settlements": """
                    SELECT SE_AMT FROM SETTLEMENT WHERE SE_T_ID IN @found_ids
                """,
                "get_history": """
                    SELECT TH_ST_ID FROM TRADE_HISTORY
                    WHERE TH_T_ID IN @found_ids
                """,
            },
            body=_trade_update3_body,
            weight=PAPER_MIX["Trade-Update-Frame3"],
        ),
    ]
    return ProcedureCatalog(procedures)
