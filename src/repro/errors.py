"""Exception hierarchy for the JECB reproduction library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """Invalid schema definition (unknown table/column, bad key, bad FK)."""


class IntegrityError(ReproError):
    """A data operation violated a key or referential-integrity constraint."""


class StorageError(ReproError):
    """Invalid storage operation (missing row, duplicate key, bad table)."""


class SQLSyntaxError(ReproError):
    """The SQL tokenizer or parser rejected a statement."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class ExecutionError(ReproError):
    """The query executor could not run a (syntactically valid) statement."""


class BindingError(ExecutionError):
    """A statement referenced a parameter that was not supplied."""


class AnalysisError(ReproError):
    """Static SQL analysis failed (e.g. unresolvable column reference)."""


class PartitioningError(ReproError):
    """A partitioning algorithm was misused or hit an unrecoverable state."""


class JoinPathError(PartitioningError):
    """A sequence of attribute sets does not form a valid Definition-2 path."""


class RoutingError(ReproError):
    """The runtime router could not route a request."""


class WorkloadError(ReproError):
    """A benchmark workload was configured or driven incorrectly."""


class ClusterError(ReproError):
    """The simulated cluster was misconfigured or reached an invalid state."""


class ClusterUnavailable(ClusterError):
    """A transaction touched a crashed node and must abort (retryable)."""
